module Mesh = Nocmap_noc.Mesh
module Crg = Nocmap_noc.Crg
module Cwg = Nocmap_model.Cwg
module Technology = Nocmap_energy.Technology
module Mapping = Nocmap_mapping
module Rng = Nocmap_util.Rng
module Generator = Nocmap_tgff.Generator
module Fig1 = Nocmap_apps.Fig1

let tech = Technology.t035

let test_initial_cost_matches () =
  let crg = Crg.create (Mesh.create ~cols:2 ~rows:2) in
  let inc =
    Mapping.Cost_cwm_incremental.create ~tech ~crg ~cwg:Fig1.cwg
      ~placement:Fig1.mapping_c
  in
  Alcotest.(check (float 1e-20)) "same as full evaluation"
    (Mapping.Cost_cwm.dynamic_energy ~tech ~crg ~cwg:Fig1.cwg Fig1.mapping_c)
    (Mapping.Cost_cwm_incremental.cost inc)

let test_delta_matches_full_recompute () =
  let crg = Crg.create (Mesh.create ~cols:3 ~rows:3) in
  let rng = Rng.create ~seed:9 in
  let spec = Generator.default_spec ~name:"inc" ~cores:7 ~packets:30 ~total_bits:9_000 in
  let cdcg = Generator.generate (Rng.split rng) spec in
  let cwg = Cwg.of_cdcg cdcg in
  let placement = Mapping.Placement.random (Rng.split rng) ~cores:7 ~tiles:9 in
  let inc = Mapping.Cost_cwm_incremental.create ~tech ~crg ~cwg ~placement in
  for _ = 1 to 200 do
    let core = Rng.int rng 7 in
    let tile = Rng.int rng 9 in
    let before = Mapping.Cost_cwm_incremental.cost inc in
    let delta = Mapping.Cost_cwm_incremental.move_delta inc ~core ~tile in
    Mapping.Cost_cwm_incremental.apply_move inc ~core ~tile;
    let current = Mapping.Cost_cwm_incremental.placement inc in
    let full = Mapping.Cost_cwm.dynamic_energy ~tech ~crg ~cwg current in
    Alcotest.(check bool) "placement stays valid" true
      (Mapping.Placement.is_valid ~tiles:9 current);
    Alcotest.(check (float 1e-18)) "incremental total = full recompute" full
      (Mapping.Cost_cwm_incremental.cost inc);
    Alcotest.(check (float 1e-18)) "delta consistent" (before +. delta)
      (Mapping.Cost_cwm_incremental.cost inc)
  done

let test_noop_move () =
  let crg = Crg.create (Mesh.create ~cols:2 ~rows:2) in
  let inc =
    Mapping.Cost_cwm_incremental.create ~tech ~crg ~cwg:Fig1.cwg
      ~placement:Fig1.mapping_c
  in
  Alcotest.(check (float 1e-20)) "zero delta to own tile" 0.0
    (Mapping.Cost_cwm_incremental.move_delta inc ~core:0
       ~tile:Fig1.mapping_c.(0))

let test_move_to_free_tile () =
  (* 5 cores on 6 tiles: moving to the free tile must stay consistent. *)
  let crg = Crg.create (Mesh.create ~cols:3 ~rows:2) in
  let rng = Rng.create ~seed:4 in
  let spec = Generator.default_spec ~name:"free" ~cores:5 ~packets:20 ~total_bits:4_000 in
  let cdcg = Generator.generate (Rng.split rng) spec in
  let cwg = Cwg.of_cdcg cdcg in
  let placement = [| 0; 1; 2; 3; 4 |] in
  let inc = Mapping.Cost_cwm_incremental.create ~tech ~crg ~cwg ~placement in
  Mapping.Cost_cwm_incremental.apply_move inc ~core:2 ~tile:5;
  let current = Mapping.Cost_cwm_incremental.placement inc in
  Alcotest.(check int) "core moved" 5 current.(2);
  Alcotest.(check (float 1e-18)) "total consistent"
    (Mapping.Cost_cwm.dynamic_energy ~tech ~crg ~cwg current)
    (Mapping.Cost_cwm_incremental.cost inc);
  (* And back into the vacated tile chain: swap with an occupant. *)
  Mapping.Cost_cwm_incremental.apply_move inc ~core:0 ~tile:5;
  let current = Mapping.Cost_cwm_incremental.placement inc in
  Alcotest.(check int) "swap happened" 5 current.(0);
  Alcotest.(check int) "occupant displaced" 0 current.(2);
  Alcotest.(check (float 1e-18)) "total still consistent"
    (Mapping.Cost_cwm.dynamic_energy ~tech ~crg ~cwg current)
    (Mapping.Cost_cwm_incremental.cost inc)

let test_invalid_inputs () =
  let crg = Crg.create (Mesh.create ~cols:2 ~rows:2) in
  Alcotest.(check bool) "invalid placement rejected" true
    (match
       Mapping.Cost_cwm_incremental.create ~tech ~crg ~cwg:Fig1.cwg
         ~placement:[| 0; 0; 1; 2 |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let inc =
    Mapping.Cost_cwm_incremental.create ~tech ~crg ~cwg:Fig1.cwg
      ~placement:Fig1.mapping_c
  in
  Alcotest.(check bool) "core range" true
    (match Mapping.Cost_cwm_incremental.move_delta inc ~core:9 ~tile:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_cwm_swap_delta () =
  let crg = Crg.create (Mesh.create ~cols:3 ~rows:3) in
  let rng = Rng.create ~seed:17 in
  let spec =
    Generator.default_spec ~name:"swap" ~cores:7 ~packets:25 ~total_bits:6_000
  in
  let cdcg = Generator.generate (Rng.split rng) spec in
  let cwg = Cwg.of_cdcg cdcg in
  let placement = Mapping.Placement.random (Rng.split rng) ~cores:7 ~tiles:9 in
  let inc = Mapping.Cost_cwm_incremental.create ~tech ~crg ~cwg ~placement in
  Alcotest.(check (float 1e-20)) "self swap is free" 0.0
    (Mapping.Cost_cwm_incremental.swap_delta inc ~core_a:3 ~core_b:3);
  for _ = 1 to 50 do
    let a = Rng.int rng 7 and b = Rng.int rng 7 in
    let before = Mapping.Cost_cwm_incremental.cost inc in
    let delta = Mapping.Cost_cwm_incremental.swap_delta inc ~core_a:a ~core_b:b in
    let swapped = Mapping.Cost_cwm_incremental.placement inc in
    let ta = swapped.(a) in
    swapped.(a) <- swapped.(b);
    swapped.(b) <- ta;
    let full = Mapping.Cost_cwm.dynamic_energy ~tech ~crg ~cwg swapped in
    Alcotest.(check (float 1e-18)) "swap delta matches full recompute" full
      (before +. delta)
  done

(* --- CDCM: the simulation-backed incremental evaluator --- *)

module Noc_params = Nocmap_energy.Noc_params
module Cost_cdcm = Mapping.Cost_cdcm
module Inc = Mapping.Cost_cdcm_incremental

let params = Noc_params.make ~flit_bits:8 ()
let tech7 = Technology.t007

let cdcm_setup ~seed =
  let crg = Crg.create (Mesh.create ~cols:3 ~rows:3) in
  let rng = Rng.create ~seed in
  let spec =
    Generator.default_spec ~name:"cdcm-inc" ~cores:7 ~packets:30
      ~total_bits:9_000
  in
  let cdcg = Generator.generate (Rng.split rng) spec in
  let placement = Mapping.Placement.random (Rng.split rng) ~cores:7 ~tiles:9 in
  (crg, cdcg, placement, rng)

let fresh ~crg ~cdcg p =
  Cost_cdcm.evaluate ~tech:tech7 ~params ~crg ~cdcg p

(* The single-move candidate [core -> tile] with swap semantics. *)
let moved p ~core ~tile =
  let cand = Array.copy p in
  let from_tile = p.(core) in
  cand.(core) <- tile;
  Array.iteri (fun c t -> if c <> core && t = tile then cand.(c) <- from_tile) p;
  cand

let test_cdcm_initial_cost () =
  let crg, cdcg, placement, _ = cdcm_setup ~seed:3 in
  let inc = Inc.create ~tech:tech7 ~params ~crg ~cdcg ~placement () in
  Alcotest.(check bool) "bit-identical to fresh evaluation" true
    (Inc.cost inc = (fresh ~crg ~cdcg placement).Cost_cdcm.total)

let test_cdcm_walk_consistency () =
  let crg, cdcg, placement, rng = cdcm_setup ~seed:5 in
  let inc = Inc.create ~tech:tech7 ~params ~crg ~cdcg ~placement () in
  for _ = 1 to 40 do
    let core = Rng.int rng 7 and tile = Rng.int rng 9 in
    let before = Inc.cost inc in
    let delta = Inc.move_delta inc ~core ~tile in
    Inc.apply_move inc ~core ~tile;
    let current = Inc.placement inc in
    Alcotest.(check bool) "placement stays valid" true
      (Mapping.Placement.is_valid ~tiles:9 current);
    let truth = (fresh ~crg ~cdcg current).Cost_cdcm.total in
    Alcotest.(check bool) "cost bit-identical to fresh evaluation" true
      (Inc.cost inc = truth);
    Alcotest.(check (float 1e-22)) "delta consistent" truth (before +. delta)
  done

let test_cdcm_move_bound () =
  let crg, cdcg, placement, rng = cdcm_setup ~seed:11 in
  let inc = Inc.create ~tech:tech7 ~params ~crg ~cdcg ~placement () in
  for _ = 1 to 60 do
    let core = Rng.int rng 7 and tile = Rng.int rng 9 in
    let truth = fresh ~crg ~cdcg (moved (Inc.placement inc) ~core ~tile) in
    (* An infinite budget can never reject: the answer is the exact,
       bit-identical evaluation. *)
    (match Inc.move_bound inc ~core ~tile ~cutoff:infinity with
    | Cost_cdcm.Exact ev ->
      Alcotest.(check bool) "exact under infinite cutoff" true (ev = truth)
    | Cost_cdcm.At_least _ -> Alcotest.fail "rejected under infinite cutoff");
    (* A tight budget must answer soundly either way. *)
    let cutoff = truth.Cost_cdcm.total *. 0.95 in
    match Inc.move_bound inc ~core ~tile ~cutoff with
    | Cost_cdcm.Exact ev ->
      Alcotest.(check bool) "exact verdict matches" true (ev = truth)
    | Cost_cdcm.At_least lb ->
      Alcotest.(check bool) "lower bound below true cost" true
        (lb <= truth.Cost_cdcm.total);
      Alcotest.(check bool) "lower bound reaches the cutoff" true (lb >= cutoff)
  done

let test_cdcm_noop_and_stats () =
  let crg, cdcg, placement, _ = cdcm_setup ~seed:13 in
  let inc = Inc.create ~tech:tech7 ~params ~crg ~cdcg ~placement () in
  let c0 = Inc.cost inc in
  Alcotest.(check (float 1e-22)) "no-op move is free" 0.0
    (Inc.move_delta inc ~core:2 ~tile:placement.(2));
  (* A no-op bound query is a memo hit, not a simulation. *)
  (match Inc.move_bound inc ~core:2 ~tile:placement.(2) ~cutoff:infinity with
  | Cost_cdcm.Exact ev ->
    Alcotest.(check bool) "memoized exact" true (ev.Cost_cdcm.total = c0)
  | Cost_cdcm.At_least _ -> Alcotest.fail "no-op rejected");
  for tile = 0 to 8 do
    ignore (Inc.move_bound inc ~core:4 ~tile ~cutoff:(c0 *. 0.9))
  done;
  let s = Inc.stats inc in
  Alcotest.(check int) "every query is a hit or a fallback" s.Inc.queries
    (s.Inc.delta_hits + s.Inc.full_sim_fallbacks);
  Alcotest.(check bool) "rejections are hits" true
    (s.Inc.bound_rejections <= s.Inc.delta_hits)

let test_cdcm_swap_delta () =
  let crg, cdcg, placement, rng = cdcm_setup ~seed:19 in
  let inc = Inc.create ~tech:tech7 ~params ~crg ~cdcg ~placement () in
  Alcotest.(check (float 1e-22)) "self swap is free" 0.0
    (Inc.swap_delta inc ~core_a:5 ~core_b:5);
  for _ = 1 to 25 do
    let a = Rng.int rng 7 and b = Rng.int rng 7 in
    let before = Inc.cost inc in
    let delta = Inc.swap_delta inc ~core_a:a ~core_b:b in
    let swapped = Inc.placement inc in
    let ta = swapped.(a) in
    swapped.(a) <- swapped.(b);
    swapped.(b) <- ta;
    let truth = (fresh ~crg ~cdcg swapped).Cost_cdcm.total in
    Alcotest.(check (float 1e-22)) "swap delta matches full recompute" truth
      (before +. delta)
  done

let test_cdcm_evaluate_for () =
  let crg, cdcg, placement, rng = cdcm_setup ~seed:23 in
  let inc = Inc.create ~tech:tech7 ~params ~crg ~cdcg ~placement () in
  for _ = 1 to 10 do
    let p = Mapping.Placement.random (Rng.split rng) ~cores:7 ~tiles:9 in
    let ev = Inc.evaluate_for inc p in
    Alcotest.(check bool) "bit-identical to fresh evaluation" true
      (ev = fresh ~crg ~cdcg p);
    Alcotest.(check bool) "re-anchored at the candidate" true
      (Inc.placement inc = p)
  done

let test_cdcm_invalid_inputs () =
  let crg, cdcg, placement, _ = cdcm_setup ~seed:29 in
  let rejects f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "invalid placement rejected" true
    (rejects (fun () ->
         Inc.create ~tech:tech7 ~params ~crg ~cdcg
           ~placement:(Array.make 7 0) ()));
  let inc = Inc.create ~tech:tech7 ~params ~crg ~cdcg ~placement () in
  Alcotest.(check bool) "core out of range" true
    (rejects (fun () -> Inc.move_delta inc ~core:7 ~tile:0));
  Alcotest.(check bool) "tile out of range" true
    (rejects (fun () -> Inc.move_bound inc ~core:0 ~tile:9 ~cutoff:infinity));
  Alcotest.(check bool) "bad candidate length" true
    (rejects (fun () -> Inc.bound_for inc ~cutoff:infinity [| 0; 1 |]))

let suite =
  ( "cwm-incremental",
    [
      Alcotest.test_case "initial cost" `Quick test_initial_cost_matches;
      Alcotest.test_case "deltas match full recompute" `Quick
        test_delta_matches_full_recompute;
      Alcotest.test_case "no-op move" `Quick test_noop_move;
      Alcotest.test_case "move to free tile" `Quick test_move_to_free_tile;
      Alcotest.test_case "invalid inputs" `Quick test_invalid_inputs;
      Alcotest.test_case "swap delta" `Quick test_cwm_swap_delta;
    ] )

let cdcm_suite =
  ( "cdcm-incremental",
    [
      Alcotest.test_case "initial cost" `Quick test_cdcm_initial_cost;
      Alcotest.test_case "walk matches fresh evaluation" `Quick
        test_cdcm_walk_consistency;
      Alcotest.test_case "move bound verdicts" `Quick test_cdcm_move_bound;
      Alcotest.test_case "no-op and stats invariant" `Quick
        test_cdcm_noop_and_stats;
      Alcotest.test_case "swap delta" `Quick test_cdcm_swap_delta;
      Alcotest.test_case "evaluate_for re-anchors" `Quick test_cdcm_evaluate_for;
      Alcotest.test_case "invalid inputs" `Quick test_cdcm_invalid_inputs;
    ] )
