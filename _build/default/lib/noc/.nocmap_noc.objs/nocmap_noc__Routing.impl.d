lib/noc/routing.ml: List Mesh String
