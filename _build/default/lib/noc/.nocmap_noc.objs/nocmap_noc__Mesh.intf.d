lib/noc/mesh.mli: Format
