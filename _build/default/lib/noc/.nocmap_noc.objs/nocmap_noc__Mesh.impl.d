lib/noc/mesh.ml: Format List Printf String
