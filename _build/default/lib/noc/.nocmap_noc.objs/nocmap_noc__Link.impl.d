lib/noc/link.ml: Fun List Mesh Printf
