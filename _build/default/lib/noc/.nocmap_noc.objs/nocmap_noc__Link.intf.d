lib/noc/link.mli: Mesh
