lib/noc/crg.ml: Array Link List Mesh Nocmap_graph Routing
