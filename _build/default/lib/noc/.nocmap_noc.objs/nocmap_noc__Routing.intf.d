lib/noc/routing.mli: Mesh
