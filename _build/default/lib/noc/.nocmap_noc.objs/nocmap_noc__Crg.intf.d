lib/noc/crg.mli: Mesh Nocmap_graph Routing
