type t = {
  cols : int;
  rows : int;
}

let create ~cols ~rows =
  if cols <= 0 || rows <= 0 then invalid_arg "Mesh.create: dimensions must be positive";
  { cols; rows }

let of_string s =
  let fail () = invalid_arg ("Mesh.of_string: expected \"<cols>x<rows>\", got " ^ s) in
  match String.split_on_char 'x' (String.lowercase_ascii (String.trim s)) with
  | [ a; b ] -> begin
    match (int_of_string_opt (String.trim a), int_of_string_opt (String.trim b)) with
    | Some cols, Some rows when cols > 0 && rows > 0 -> create ~cols ~rows
    | Some _, Some _ | None, _ | _, None -> fail ()
  end
  | _ -> fail ()

let to_string t = Printf.sprintf "%dx%d" t.cols t.rows

let tile_count t = t.cols * t.rows

let in_range t tile = tile >= 0 && tile < tile_count t

let coord_of_tile t tile =
  if not (in_range t tile) then invalid_arg "Mesh.coord_of_tile: tile out of range";
  (tile mod t.cols, tile / t.cols)

let tile_of_coord t ~x ~y =
  if x < 0 || x >= t.cols || y < 0 || y >= t.rows then
    invalid_arg "Mesh.tile_of_coord: coordinate outside mesh";
  (y * t.cols) + x

let manhattan t a b =
  let xa, ya = coord_of_tile t a in
  let xb, yb = coord_of_tile t b in
  abs (xa - xb) + abs (ya - yb)

let neighbors t tile =
  let x, y = coord_of_tile t tile in
  let candidates =
    [ (x, y - 1); (x, y + 1); (x - 1, y); (x + 1, y) ]
  in
  List.filter_map
    (fun (nx, ny) ->
      if nx >= 0 && nx < t.cols && ny >= 0 && ny < t.rows then
        Some (tile_of_coord t ~x:nx ~y:ny)
      else None)
    candidates

let pp ppf t = Format.fprintf ppf "%s mesh" (to_string t)
