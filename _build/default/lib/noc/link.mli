(** Dense identifiers for directed inter-tile links.

    Each tile owns four outgoing link slots (north, east, south, west);
    the link from tile [a] to an adjacent tile [b] has identifier
    [4*a + direction].  These identifiers index the per-link occupancy
    and cost-variable arrays of the simulator.

    With [~wrap:true] the mesh is treated as a torus: the slots leaving
    the mesh boundary wrap to the opposite edge.  To keep the
    (src, dst) -> id relation unambiguous, wrap mode requires both mesh
    dimensions to be at least 3 (on a 2-wide torus the wrap channel and
    the internal channel would connect the same tile pair). *)

type direction =
  | North
  | East
  | South
  | West

val direction_to_string : direction -> string

val slot_count : Mesh.t -> int
(** Size of an array indexed by link id, [4 * tile_count]. *)

val id : ?wrap:bool -> Mesh.t -> src:int -> dst:int -> int
(** Identifier of the directed link between two adjacent (or, with
    [~wrap:true], torus-adjacent) tiles.
    @raise Invalid_argument if the tiles are not neighbors, or if wrap
    is requested on a mesh with a dimension below 3. *)

val endpoints : ?wrap:bool -> Mesh.t -> int -> int * int
(** [(src, dst)] of a link id.
    @raise Invalid_argument for a slot that does not correspond to a
    physical link. *)

val exists : ?wrap:bool -> Mesh.t -> int -> bool
(** Whether a slot in [0 .. slot_count-1] is a physical link.  On a
    torus every in-range slot is. *)

val all : ?wrap:bool -> Mesh.t -> int list
(** Every physical link id, ascending. *)

val to_string : ?wrap:bool -> Mesh.t -> int -> string
(** Human-readable form such as ["L(3->4)"]. *)
