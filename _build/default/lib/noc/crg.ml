type path = {
  routers : int array;
  links : int array;
}

type t = {
  mesh : Mesh.t;
  routing : Routing.algorithm;
  paths : path array; (* index: src * n + dst *)
}

let build_path mesh routing ~src ~dst =
  let wrap = Routing.uses_wrap_links routing in
  let routers = Array.of_list (Routing.router_path mesh routing ~src ~dst) in
  let links =
    Routing.links_of_path (Array.to_list routers)
    |> List.map (fun (a, b) -> Link.id ~wrap mesh ~src:a ~dst:b)
    |> Array.of_list
  in
  { routers; links }

let create ?(routing = Routing.Xy) mesh =
  let n = Mesh.tile_count mesh in
  let paths =
    Array.init (n * n) (fun i -> build_path mesh routing ~src:(i / n) ~dst:(i mod n))
  in
  { mesh; routing; paths }

let mesh t = t.mesh

let routing t = t.routing

let tile_count t = Mesh.tile_count t.mesh

let path t ~src ~dst =
  let n = tile_count t in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Crg.path: tile out of range";
  t.paths.((src * n) + dst)

let router_count_on_path t ~src ~dst = Array.length (path t ~src ~dst).routers

let to_digraph t =
  let wrap = Routing.uses_wrap_links t.routing in
  let n = tile_count t in
  let g = Nocmap_graph.Digraph.create ~n in
  let add lid =
    let src, dst = Link.endpoints ~wrap t.mesh lid in
    Nocmap_graph.Digraph.add_edge g ~src ~dst ~label:0
  in
  List.iter add (Link.all ~wrap t.mesh);
  g
