(** Communication resource graph (Definition 3 of the paper).

    The CRG packages the target architecture: the mesh, the routing
    algorithm, and precomputed router/link paths between every ordered
    tile pair.  Routers and links carry the cost variables the mapping
    algorithms accumulate; those annotations live with the evaluator,
    while this module owns the static structure. *)

type path = {
  routers : int array;  (** Tiles traversed, source to destination inclusive. *)
  links : int array;    (** {!Link.id}s between consecutive routers. *)
}

type t

val create : ?routing:Routing.algorithm -> Mesh.t -> t
(** Builds the CRG and precomputes all pairwise paths (XY by default). *)

val mesh : t -> Mesh.t

val routing : t -> Routing.algorithm

val tile_count : t -> int

val path : t -> src:int -> dst:int -> path
(** Precomputed path.  @raise Invalid_argument on out-of-range tiles. *)

val router_count_on_path : t -> src:int -> dst:int -> int
(** The paper's [K]: number of routers a packet traverses. *)

val to_digraph : t -> Nocmap_graph.Digraph.t
(** Vertices are tiles, edges are physical links (label 0); the
    architecture graph of Definition 3, e.g. for DOT export. *)
