type direction =
  | North
  | East
  | South
  | West

let direction_to_string = function
  | North -> "north"
  | East -> "east"
  | South -> "south"
  | West -> "west"

let direction_index = function
  | North -> 0
  | East -> 1
  | South -> 2
  | West -> 3

let slot_count mesh = 4 * Mesh.tile_count mesh

let check_wrap_dims mesh =
  if mesh.Mesh.cols < 3 || mesh.Mesh.rows < 3 then
    invalid_arg "Link: torus links require both mesh dimensions >= 3"

(* Signed per-dimension offset, reduced to the shortest torus step when
   wrapping. *)
let direction_between ~wrap mesh ~src ~dst =
  let xs, ys = Mesh.coord_of_tile mesh src in
  let xd, yd = Mesh.coord_of_tile mesh dst in
  let cols = mesh.Mesh.cols and rows = mesh.Mesh.rows in
  let dx = xd - xs and dy = yd - ys in
  let dx = if wrap && dx = cols - 1 then -1 else if wrap && dx = -(cols - 1) then 1 else dx in
  let dy = if wrap && dy = rows - 1 then -1 else if wrap && dy = -(rows - 1) then 1 else dy in
  match (dx, dy) with
  | 0, -1 -> North
  | 1, 0 -> East
  | 0, 1 -> South
  | -1, 0 -> West
  | _, _ -> invalid_arg "Link.id: tiles are not adjacent"

let id ?(wrap = false) mesh ~src ~dst =
  if wrap then check_wrap_dims mesh;
  (4 * src) + direction_index (direction_between ~wrap mesh ~src ~dst)

let endpoints ?(wrap = false) mesh lid =
  if wrap then check_wrap_dims mesh;
  let src = lid / 4 in
  if not (Mesh.in_range mesh src) then invalid_arg "Link.endpoints: id out of range";
  let x, y = Mesh.coord_of_tile mesh src in
  let target =
    match lid mod 4 with
    | 0 -> (x, y - 1)
    | 1 -> (x + 1, y)
    | 2 -> (x, y + 1)
    | _ -> (x - 1, y)
  in
  let tx, ty = target in
  if wrap then
    let tx = (tx + mesh.Mesh.cols) mod mesh.Mesh.cols in
    let ty = (ty + mesh.Mesh.rows) mod mesh.Mesh.rows in
    (src, Mesh.tile_of_coord mesh ~x:tx ~y:ty)
  else if tx < 0 || tx >= mesh.Mesh.cols || ty < 0 || ty >= mesh.Mesh.rows then
    invalid_arg "Link.endpoints: slot has no physical link"
  else (src, Mesh.tile_of_coord mesh ~x:tx ~y:ty)

let exists ?(wrap = false) mesh lid =
  lid >= 0
  && lid < slot_count mesh
  &&
  match endpoints ~wrap mesh lid with
  | _, _ -> true
  | exception Invalid_argument _ -> false

let all ?(wrap = false) mesh =
  if wrap then check_wrap_dims mesh;
  List.filter (exists ~wrap mesh) (List.init (slot_count mesh) Fun.id)

let to_string ?(wrap = false) mesh lid =
  let src, dst = endpoints ~wrap mesh lid in
  Printf.sprintf "L(%d->%d)" src dst
