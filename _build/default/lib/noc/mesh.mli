(** Regular 2-D mesh topology.

    Tiles are numbered row-major from the top-left corner, matching the
    paper's Figure 1: in a 2x2 mesh, tile 0 is the top-left (the paper's
    tau_1), tile 1 the top-right, tile 2 the bottom-left, tile 3 the
    bottom-right.  A tile at column [x] and row [y] has index
    [y * cols + x]. *)

type t = private {
  cols : int;  (** NoC width (the paper's first dimension, e.g. 3 in "3x2"). *)
  rows : int;  (** NoC height. *)
}

val create : cols:int -> rows:int -> t
(** @raise Invalid_argument unless both dimensions are positive. *)

val of_string : string -> t
(** Parses ["3x2"] or ["3X2"].  @raise Invalid_argument on anything else. *)

val to_string : t -> string
(** ["<cols>x<rows>"]. *)

val tile_count : t -> int

val coord_of_tile : t -> int -> int * int
(** [(x, y)] of a tile index.  @raise Invalid_argument when out of range. *)

val tile_of_coord : t -> x:int -> y:int -> int
(** @raise Invalid_argument when the coordinate is outside the mesh. *)

val in_range : t -> int -> bool

val manhattan : t -> int -> int -> int
(** Hop distance between two tiles; the number of routers traversed by a
    minimal path is [manhattan + 1]. *)

val neighbors : t -> int -> int list
(** Adjacent tiles (2 to 4 of them), in N, S, W, E order where present. *)

val pp : Format.formatter -> t -> unit
