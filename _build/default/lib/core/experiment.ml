module Rng = Nocmap_util.Rng
module Mesh = Nocmap_noc.Mesh
module Crg = Nocmap_noc.Crg
module Cdcg = Nocmap_model.Cdcg
module Cwg = Nocmap_model.Cwg
module Noc_params = Nocmap_energy.Noc_params
module Technology = Nocmap_energy.Technology
module Mapping = Nocmap_mapping

type budget =
  | Quick
  | Standard
  | Thorough

type config = {
  budget : budget;
  restarts : int;
  params : Noc_params.t;
  tech_low : Technology.t;
  tech_high : Technology.t;
}

let default_config =
  {
    budget = Standard;
    restarts = 2;
    params = Noc_params.paper_example;
    tech_low = Technology.t035;
    tech_high = Technology.t007;
  }

let quick_config = { default_config with budget = Quick; restarts = 1 }

type outcome = {
  app : string;
  mesh : Mesh.t;
  cwm_low : Mapping.Cost_cdcm.evaluation;
  cwm_high : Mapping.Cost_cdcm.evaluation;
  cdcm_low : Mapping.Cost_cdcm.evaluation;
  cdcm_high : Mapping.Cost_cdcm.evaluation;
  etr_percent : float;
  ecs_low_percent : float;
  ecs_high_percent : float;
  cwm_cpu_seconds : float;
  cdcm_cpu_seconds : float;
  cwm_evaluations : int;
  cdcm_evaluations : int;
}

let sa_config config ~tiles =
  match config.budget with
  | Quick -> Mapping.Annealing.quick_config ~tiles
  | Standard ->
    {
      Mapping.Annealing.initial_temperature = `Auto;
      cooling = 0.95;
      moves_per_temperature = 8 * tiles;
      patience = 12;
      (* larger NoCs need proportionally more moves to converge *)
      max_evaluations = max 30_000 (350 * tiles);
    }
  | Thorough ->
    {
      Mapping.Annealing.initial_temperature = `Auto;
      cooling = 0.975;
      moves_per_temperature = 40 * tiles;
      patience = 25;
      max_evaluations = 250_000;
    }

let reduction = Nocmap_util.Stats.reduction_percent

(* Best of [restarts] annealing descents; returns the result plus CPU
   seconds and total evaluations.  CWM cost evaluations are orders of
   magnitude cheaper than CDCM simulations, so the CWM legs get a
   proportionally larger budget — matching how the models would be used
   in practice and keeping the CWM baseline honestly converged. *)
let multi_start ?(budget_scale = 1) ?warm_start ~rng ~config ~tiles ~cores objective =
  let sa = sa_config config ~tiles in
  let sa =
    {
      sa with
      Mapping.Annealing.moves_per_temperature =
        sa.Mapping.Annealing.moves_per_temperature * budget_scale;
      max_evaluations = sa.Mapping.Annealing.max_evaluations * budget_scale;
      patience = sa.Mapping.Annealing.patience + (budget_scale / 2);
    }
  in
  let t0 = Sys.time () in
  let rec loop i best evals =
    if i >= max 1 config.restarts then (best, evals)
    else begin
      (* The last restart is warm-started when a seed placement is
         given (the CWM winner): the CDCM search then never returns a
         mapping worse than the CWM one under its own objective. *)
      let initial = if i = max 1 config.restarts - 1 then warm_start else None in
      let r =
        Mapping.Annealing.search ~rng:(Rng.split rng) ~config:sa ~tiles ~objective
          ?initial ~cores ()
      in
      let evals = evals + r.Mapping.Objective.evaluations in
      let best =
        match best with
        | Some (b : Mapping.Objective.search_result)
          when b.Mapping.Objective.cost <= r.Mapping.Objective.cost ->
          Some b
        | Some _ | None -> Some r
      in
      loop (i + 1) best evals
    end
  in
  match loop 0 None 0 with
  | Some best, evals -> (best, Sys.time () -. t0, evals)
  | None, _ -> assert false

let compare_models ~rng ~config ~mesh cdcg =
  let crg = Crg.create mesh in
  let tiles = Mesh.tile_count mesh in
  let cores = Cdcg.core_count cdcg in
  if cores > tiles then invalid_arg "Experiment.compare_models: more cores than tiles";
  let cwg = Cwg.of_cdcg cdcg in
  let params = config.params in
  let cwm_objective = Mapping.Objective.cwm ~tech:config.tech_low ~crg ~cwg in
  let cwm_best, cwm_cpu_seconds, cwm_evaluations =
    multi_start ~budget_scale:8 ~rng ~config ~tiles ~cores cwm_objective
  in
  let cdcm_search tech =
    multi_start ~warm_start:cwm_best.Mapping.Objective.placement ~rng ~config ~tiles
      ~cores
      (Mapping.Objective.cdcm ~tech ~params ~crg ~cdcg)
  in
  let cdcm_low_best, cpu_low, evals_low = cdcm_search config.tech_low in
  let cdcm_high_best, cpu_high, evals_high = cdcm_search config.tech_high in
  let evaluate tech placement =
    Mapping.Cost_cdcm.evaluate ~tech ~params ~crg ~cdcg placement
  in
  let cwm_low = evaluate config.tech_low cwm_best.Mapping.Objective.placement in
  let cwm_high = evaluate config.tech_high cwm_best.Mapping.Objective.placement in
  let cdcm_low = evaluate config.tech_low cdcm_low_best.Mapping.Objective.placement in
  let cdcm_high = evaluate config.tech_high cdcm_high_best.Mapping.Objective.placement in
  {
    app = cdcg.Cdcg.name;
    mesh;
    cwm_low;
    cwm_high;
    cdcm_low;
    cdcm_high;
    etr_percent =
      reduction ~baseline:cwm_high.Mapping.Cost_cdcm.texec_ns
        ~improved:cdcm_high.Mapping.Cost_cdcm.texec_ns;
    ecs_low_percent =
      reduction ~baseline:cwm_low.Mapping.Cost_cdcm.total
        ~improved:cdcm_low.Mapping.Cost_cdcm.total;
    ecs_high_percent =
      reduction ~baseline:cwm_high.Mapping.Cost_cdcm.total
        ~improved:cdcm_high.Mapping.Cost_cdcm.total;
    cwm_cpu_seconds;
    cdcm_cpu_seconds = cpu_low +. cpu_high;
    cwm_evaluations;
    cdcm_evaluations = evals_low + evals_high;
  }
