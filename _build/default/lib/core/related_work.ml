module Mesh = Nocmap_noc.Mesh
module Crg = Nocmap_noc.Crg
module Rng = Nocmap_util.Rng
module Stats = Nocmap_util.Stats
module Tablefmt = Nocmap_util.Tablefmt
module Cdcg = Nocmap_model.Cdcg
module Cwg = Nocmap_model.Cwg
module Mapping = Nocmap_mapping

type comparison = {
  app : string;
  mesh : Mesh.t;
  random_mean_energy : float;
  random_best_energy : float;
  optimized_energy : float;
  saving_percent : float;
}

let compare_random_vs_cwm ~rng ?(random_samples = 100)
    ?(tech = Nocmap_energy.Technology.t035) ~mesh cdcg =
  let crg = Crg.create mesh in
  let cwg = Cwg.of_cdcg cdcg in
  let tiles = Mesh.tile_count mesh in
  let cores = Cdcg.core_count cdcg in
  let energies =
    List.init random_samples (fun _ ->
        let placement = Mapping.Placement.random rng ~cores ~tiles in
        Mapping.Cost_cwm.dynamic_energy ~tech ~crg ~cwg placement)
  in
  let sa =
    Mapping.Annealing.search ~rng:(Rng.split rng)
      ~config:(Mapping.Annealing.default_config ~tiles)
      ~tiles
      ~objective:(Mapping.Objective.cwm ~tech ~crg ~cwg)
      ~cores ()
  in
  let random_mean_energy = Stats.mean energies in
  {
    app = cdcg.Cdcg.name;
    mesh;
    random_mean_energy;
    random_best_energy = Stats.minimum energies;
    optimized_energy = sa.Mapping.Objective.cost;
    saving_percent =
      Stats.reduction_percent ~baseline:random_mean_energy
        ~improved:sa.Mapping.Objective.cost;
  }

let render comparisons =
  let table =
    Tablefmt.create
      ~title:
        "Energy-aware mapping vs random mapping (Hu & Marculescu [4]: > 60 % saving)"
      ~columns:
        [
          ("App", Tablefmt.Left);
          ("NoC", Tablefmt.Left);
          ("random mean (pJ)", Tablefmt.Right);
          ("random best (pJ)", Tablefmt.Right);
          ("CWM SA (pJ)", Tablefmt.Right);
          ("saving", Tablefmt.Right);
        ]
      ()
  in
  let pj v = Printf.sprintf "%.1f" (v *. 1e12) in
  List.iter
    (fun c ->
      Tablefmt.add_row table
        [
          c.app;
          Mesh.to_string c.mesh;
          pj c.random_mean_energy;
          pj c.random_best_energy;
          pj c.optimized_energy;
          Printf.sprintf "%.0f %%" c.saving_percent;
        ])
    comparisons;
  Tablefmt.render table
