module Stats = Nocmap_util.Stats
module Tablefmt = Nocmap_util.Tablefmt

type spread = {
  mean : float;
  stddev : float;
  minimum : float;
  maximum : float;
}

type t = {
  seeds : int list;
  etr : spread;
  ecs_low : spread;
  ecs_high : spread;
}

let spread_of = function
  | [] -> { mean = 0.0; stddev = 0.0; minimum = 0.0; maximum = 0.0 }
  | xs ->
    {
      mean = Stats.mean xs;
      stddev = Stats.stddev xs;
      minimum = Stats.minimum xs;
      maximum = Stats.maximum xs;
    }

let run ?config ?instances_of ~seeds () =
  if seeds = [] then invalid_arg "Robustness.run: need at least one seed";
  let tables =
    List.map
      (fun seed ->
        let instances = Option.map (fun f -> f seed) instances_of in
        Table2.run ?config ?instances ~seed ())
      seeds
  in
  {
    seeds;
    etr = spread_of (List.map (fun t -> t.Table2.average_etr) tables);
    ecs_low = spread_of (List.map (fun t -> t.Table2.average_ecs_low) tables);
    ecs_high = spread_of (List.map (fun t -> t.Table2.average_ecs_high) tables);
  }

let render t =
  let table =
    Tablefmt.create
      ~title:
        (Printf.sprintf "Seed robustness over %d seeds" (List.length t.seeds))
      ~columns:
        [
          ("metric", Tablefmt.Left);
          ("mean", Tablefmt.Right);
          ("stddev", Tablefmt.Right);
          ("min", Tablefmt.Right);
          ("max", Tablefmt.Right);
        ]
      ()
  in
  let row name s =
    Tablefmt.add_row table
      [
        name;
        Printf.sprintf "%.1f %%" s.mean;
        Printf.sprintf "%.1f" s.stddev;
        Printf.sprintf "%.1f %%" s.minimum;
        Printf.sprintf "%.1f %%" s.maximum;
      ]
  in
  row "average ETR" t.etr;
  row "average ECS (old tech)" t.ecs_low;
  row "average ECS (deep submicron)" t.ecs_high;
  Tablefmt.render table
