lib/core/cpu_time.ml: Array List Nocmap_energy Nocmap_mapping Nocmap_model Nocmap_noc Nocmap_tgff Nocmap_util Printf Sys
