lib/core/es_vs_sa.mli: Nocmap_mapping Nocmap_noc Nocmap_util
