lib/core/table1.mli: Nocmap_noc
