lib/core/robustness.mli: Experiment Nocmap_model Nocmap_noc
