lib/core/related_work.mli: Nocmap_energy Nocmap_model Nocmap_noc Nocmap_util
