lib/core/experiment.ml: Nocmap_energy Nocmap_mapping Nocmap_model Nocmap_noc Nocmap_util Sys
