lib/core/cpu_time.mli: Nocmap_energy Nocmap_model Nocmap_noc
