lib/core/es_vs_sa.ml: List Nocmap_mapping Nocmap_noc Nocmap_util Printf
