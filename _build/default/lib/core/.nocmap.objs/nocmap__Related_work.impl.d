lib/core/related_work.ml: List Nocmap_energy Nocmap_mapping Nocmap_model Nocmap_noc Nocmap_util Printf
