lib/core/table2.ml: Experiment Hashtbl List Nocmap_energy Nocmap_noc Nocmap_tgff Nocmap_util Option Printf
