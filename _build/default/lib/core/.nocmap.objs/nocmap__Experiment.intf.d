lib/core/experiment.mli: Nocmap_energy Nocmap_mapping Nocmap_model Nocmap_noc Nocmap_util
