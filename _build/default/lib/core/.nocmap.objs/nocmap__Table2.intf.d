lib/core/table2.mli: Experiment Nocmap_model Nocmap_noc
