lib/core/table1.ml: Buffer Hashtbl List Nocmap_model Nocmap_noc Nocmap_tgff Nocmap_util String
