lib/core/robustness.ml: List Nocmap_util Option Printf Table2
