(** CPU-cost comparison of the two cost evaluators (Section 5).

    The paper reports that CDCM's complexity is proportional to NDP
    (dependences + packets) against CWM's NCC (communicating pairs), and
    that the CPU-time overhead grows roughly linearly in NDP/NCC with a
    small slope — at most +23 % in their experiments.  This module
    measures evaluations of both objectives on the same instance and
    placement stream. *)

type measurement = {
  app : string;
  mesh : Nocmap_noc.Mesh.t;
  ncc : int;
  ndp : int;
  ndp_over_ncc : float;
  cwm_ns_per_eval : float;
  cdcm_ns_per_eval : float;
  overhead_percent : float;
      (** [(cdcm - cwm) / cwm * 100] per evaluation. *)
}

val measure :
  ?evaluations:int ->
  ?params:Nocmap_energy.Noc_params.t ->
  ?tech:Nocmap_energy.Technology.t ->
  seed:int ->
  mesh:Nocmap_noc.Mesh.t ->
  Nocmap_model.Cdcg.t ->
  measurement
(** Times [evaluations] (default 200) cost calls of each model over an
    identical random placement stream. *)

val over_suite : ?evaluations:int -> seed:int -> unit -> measurement list

val render : measurement list -> string
