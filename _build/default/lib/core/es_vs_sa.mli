(** Certification of the annealing heuristic against exhaustive search.

    The paper reports that "for small NoC sizes (up to 3x4 or 2x5), both
    ES and SA methods reached the same results".  This module runs both
    on an instance and reports whether SA attains the exhaustive
    optimum. *)

type verdict = {
  app : string;
  mesh : Nocmap_noc.Mesh.t;
  objective_name : string;
  es_cost : float;
  sa_cost : float;
  sa_reached_optimum : bool;   (** [sa_cost <= es_cost * (1 + 1e-9)]. *)
  es_evaluations : int;
  sa_evaluations : int;
}

val certify :
  rng:Nocmap_util.Rng.t ->
  ?sa_config:Nocmap_mapping.Annealing.config ->
  ?restarts:int ->
  mesh:Nocmap_noc.Mesh.t ->
  objective:Nocmap_mapping.Objective.t ->
  cores:int ->
  app:string ->
  unit ->
  verdict
(** Runs exhaustive search and [restarts] (default 3) annealing
    descents.
    @raise Invalid_argument when the instance is too large for
    exhaustive search (see {!Nocmap_mapping.Exhaustive.search}). *)

val render : verdict list -> string
