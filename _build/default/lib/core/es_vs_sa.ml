module Mesh = Nocmap_noc.Mesh
module Rng = Nocmap_util.Rng
module Mapping = Nocmap_mapping
module Tablefmt = Nocmap_util.Tablefmt

type verdict = {
  app : string;
  mesh : Mesh.t;
  objective_name : string;
  es_cost : float;
  sa_cost : float;
  sa_reached_optimum : bool;
  es_evaluations : int;
  sa_evaluations : int;
}

let certify ~rng ?sa_config ?(restarts = 3) ~mesh ~objective ~cores ~app () =
  let tiles = Mesh.tile_count mesh in
  let sa_config =
    match sa_config with
    | Some c -> c
    | None -> Mapping.Annealing.default_config ~tiles
  in
  let es = Mapping.Exhaustive.search ~objective ~cores ~tiles () in
  let rec best_sa i best evals =
    if i >= restarts then (best, evals)
    else begin
      let r =
        Mapping.Annealing.search ~rng:(Rng.split rng) ~config:sa_config ~tiles
          ~objective ~cores ()
      in
      let evals = evals + r.Mapping.Objective.evaluations in
      match best with
      | Some (b : Mapping.Objective.search_result)
        when b.Mapping.Objective.cost <= r.Mapping.Objective.cost ->
        best_sa (i + 1) best evals
      | Some _ | None -> best_sa (i + 1) (Some r) evals
    end
  in
  match best_sa 0 None 0 with
  | None, _ -> assert false
  | Some sa, sa_evaluations ->
    {
      app;
      mesh;
      objective_name = objective.Mapping.Objective.name;
      es_cost = es.Mapping.Objective.cost;
      sa_cost = sa.Mapping.Objective.cost;
      sa_reached_optimum =
        sa.Mapping.Objective.cost <= es.Mapping.Objective.cost *. (1.0 +. 1e-9);
      es_evaluations = es.Mapping.Objective.evaluations;
      sa_evaluations;
    }

let render verdicts =
  let table =
    Tablefmt.create ~title:"Exhaustive search vs simulated annealing"
      ~columns:
        [
          ("App", Tablefmt.Left);
          ("NoC", Tablefmt.Left);
          ("Objective", Tablefmt.Left);
          ("ES cost", Tablefmt.Right);
          ("SA cost", Tablefmt.Right);
          ("SA optimal?", Tablefmt.Center);
          ("ES evals", Tablefmt.Right);
          ("SA evals", Tablefmt.Right);
        ]
      ()
  in
  List.iter
    (fun v ->
      Tablefmt.add_row table
        [
          v.app;
          Mesh.to_string v.mesh;
          v.objective_name;
          Printf.sprintf "%.6g" v.es_cost;
          Printf.sprintf "%.6g" v.sa_cost;
          (if v.sa_reached_optimum then "yes" else "NO");
          string_of_int v.es_evaluations;
          string_of_int v.sa_evaluations;
        ])
    verdicts;
  Tablefmt.render table
