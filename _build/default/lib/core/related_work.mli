(** Sanity anchors against the related work the paper builds on.

    Hu & Marculescu [4] report that energy-aware mapping cuts NoC energy
    by more than 60 % versus random mapping solutions.  This module
    reproduces that comparison with our CWM annealer: the dynamic energy
    of the average random placement against the best found mapping. *)

type comparison = {
  app : string;
  mesh : Nocmap_noc.Mesh.t;
  random_mean_energy : float;   (** Mean EDyNoC over random placements. *)
  random_best_energy : float;
  optimized_energy : float;     (** Best CWM annealing result. *)
  saving_percent : float;       (** Reduction of optimized vs random mean. *)
}

val compare_random_vs_cwm :
  rng:Nocmap_util.Rng.t ->
  ?random_samples:int ->
  ?tech:Nocmap_energy.Technology.t ->
  mesh:Nocmap_noc.Mesh.t ->
  Nocmap_model.Cdcg.t ->
  comparison
(** Draws [random_samples] (default 100) placements and one annealing
    run on the CWM objective (Equation 3 energy at [tech], default
    0.35 um). *)

val render : comparison list -> string
