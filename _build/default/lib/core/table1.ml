module Mesh = Nocmap_noc.Mesh
module Features = Nocmap_model.Features
module Tablefmt = Nocmap_util.Tablefmt

type row = {
  mesh : Mesh.t;
  cores : int list;
  packets : int list;
  total_bits : int list;
}

let rows ~seed =
  let instances = Nocmap_tgff.Suite.instances ~seed in
  let by_mesh = Hashtbl.create 8 in
  let order = ref [] in
  let record (mesh, cdcg) =
    let key = Mesh.to_string mesh in
    let features = Features.of_cdcg cdcg in
    (match Hashtbl.find_opt by_mesh key with
    | None ->
      order := key :: !order;
      Hashtbl.add by_mesh key
        {
          mesh;
          cores = [ features.Features.cores ];
          packets = [ features.Features.packets ];
          total_bits = [ features.Features.total_bits ];
        }
    | Some row ->
      Hashtbl.replace by_mesh key
        {
          row with
          cores = row.cores @ [ features.Features.cores ];
          packets = row.packets @ [ features.Features.packets ];
          total_bits = row.total_bits @ [ features.Features.total_bits ];
        });
    ()
  in
  List.iter record instances;
  List.rev_map (Hashtbl.find by_mesh) !order

let render ~seed =
  let table =
    Tablefmt.create ~title:"Table 1 - Summary of NoC/application features"
      ~columns:
        [
          ("NoC size", Tablefmt.Left);
          ("Number of cores", Tablefmt.Left);
          ("Number of packets of all cores", Tablefmt.Left);
          ("Total volume of bits", Tablefmt.Left);
        ]
      ()
  in
  let ints xs = String.concat "; " (List.map string_of_int xs) in
  let with_thousands v =
    let digits = string_of_int v in
    let n = String.length digits in
    let buf = Buffer.create (n + (n / 3)) in
    String.iteri
      (fun i c ->
        if i > 0 && (n - i) mod 3 = 0 then Buffer.add_char buf ',';
        Buffer.add_char buf c)
      digits;
    Buffer.contents buf
  in
  let grouped_ints xs = String.concat "; " (List.map with_thousands xs) in
  let add row =
    Tablefmt.add_row table
      [
        Mesh.to_string row.mesh;
        ints row.cores;
        ints row.packets;
        grouped_ints row.total_bits;
      ]
  in
  List.iter add (rows ~seed);
  Tablefmt.render table
