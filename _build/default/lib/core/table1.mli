(** Regeneration of the paper's Table 1: "Summary of NoC/application
    features" — NoC size, number of cores, number of packets of all
    cores and total bit volume, grouped three applications per small NoC
    size. *)

type row = {
  mesh : Nocmap_noc.Mesh.t;
  cores : int list;
  packets : int list;
  total_bits : int list;
}

val rows : seed:int -> row list
(** Generates the 18-application suite and summarizes it exactly like
    the paper's table (one line per NoC size, value lists separated per
    application). *)

val render : seed:int -> string
(** ASCII rendering of the table. *)
