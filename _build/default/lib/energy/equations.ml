let ebit_single_hop (tech : Technology.t) =
  tech.Technology.e_rbit +. tech.Technology.e_lbit +. tech.Technology.e_cbit

let ebit_path (tech : Technology.t) ~routers =
  if routers < 1 then invalid_arg "Equations.ebit_path: need at least one router";
  (float_of_int routers *. tech.Technology.e_rbit)
  +. (float_of_int (routers - 1) *. tech.Technology.e_lbit)

let communication_energy tech ~routers ~bits =
  float_of_int bits *. ebit_path tech ~routers

let static_power (tech : Technology.t) ~tiles =
  if tiles < 1 then invalid_arg "Equations.static_power: need at least one tile";
  float_of_int tiles *. tech.Technology.p_s_router

let static_energy tech ~tiles ~texec_ns = static_power tech ~tiles *. texec_ns

let total_energy ~dynamic ~static_ = dynamic +. static_

let static_share ~dynamic ~static_ =
  let total = dynamic +. static_ in
  if total = 0.0 then 0.0 else static_ /. total
