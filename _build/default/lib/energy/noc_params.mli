(** Timing parameters of the wormhole NoC (Equations 6-8).

    These are architecture knobs, not process knobs: the number of
    cycles a router spends on a routing decision ([tr]), the cycles a
    flit takes to cross one link ([tl]), the clock period (lambda), the
    flit width and the router input-buffer capacity. *)

type buffering =
  | Unbounded            (** The paper's worked-example assumption. *)
  | Bounded of int       (** Capacity in flits per input buffer;
                             backpressure stalls the upstream hop. *)

type t = private {
  tr : int;              (** Routing-decision cycles per router. *)
  tl : int;              (** Cycles per flit per link. *)
  clock_ns : float;      (** Clock period lambda in ns. *)
  flit_bits : int;       (** Link width; a packet of [w] bits has
                             [ceil(w / flit_bits)] flits. *)
  buffering : buffering;
}

val make :
  ?tr:int -> ?tl:int -> ?clock_ns:float -> ?flit_bits:int -> ?buffering:buffering ->
  unit -> t
(** Defaults are the paper's worked-example values:
    [tr = 2], [tl = 1], [clock_ns = 1.0], [flit_bits = 1], unbounded
    buffers.  @raise Invalid_argument on non-positive values. *)

val paper_example : t
(** Exactly the Figure 3-5 configuration. *)

val default_16bit : t
(** A realistic configuration for the Table 1/2 workloads: 16-bit flits,
    otherwise the paper-example timing. *)

val flits_of_bits : t -> int -> int
(** [ceil(bits / flit_bits)]; the paper's [n_abq].  Requires positive
    bit count. *)

val routing_delay_cycles : t -> routers:int -> int
(** Equation (6) without the lambda factor: [K*(tr+tl) + tl]. *)

val packet_delay_cycles : t -> flits:int -> int
(** Equation (7) without lambda: [tl*(n-1)]. *)

val total_delay_cycles : t -> routers:int -> flits:int -> int
(** Equation (8) without lambda: [K*(tr+tl) + tl*n]. *)

val cycles_to_ns : t -> int -> float
(** Multiplies by lambda. *)

val pp : Format.formatter -> t -> unit
