lib/energy/technology.mli: Format
