lib/energy/equations.ml: Technology
