lib/energy/noc_params.ml: Format Printf
