lib/energy/noc_params.mli: Format
