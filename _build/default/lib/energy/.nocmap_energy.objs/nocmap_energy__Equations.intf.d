lib/energy/equations.mli: Technology
