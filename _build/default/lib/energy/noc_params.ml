type buffering =
  | Unbounded
  | Bounded of int

type t = {
  tr : int;
  tl : int;
  clock_ns : float;
  flit_bits : int;
  buffering : buffering;
}

let make ?(tr = 2) ?(tl = 1) ?(clock_ns = 1.0) ?(flit_bits = 1)
    ?(buffering = Unbounded) () =
  if tr <= 0 || tl <= 0 then invalid_arg "Noc_params.make: tr and tl must be positive";
  if clock_ns <= 0.0 then invalid_arg "Noc_params.make: clock period must be positive";
  if flit_bits <= 0 then invalid_arg "Noc_params.make: flit width must be positive";
  (match buffering with
  | Bounded c when c <= 0 -> invalid_arg "Noc_params.make: buffer capacity must be positive"
  | Bounded _ | Unbounded -> ());
  { tr; tl; clock_ns; flit_bits; buffering }

let paper_example = make ()

let default_16bit = make ~flit_bits:16 ()

let flits_of_bits t bits =
  if bits <= 0 then invalid_arg "Noc_params.flits_of_bits: bits must be positive";
  (bits + t.flit_bits - 1) / t.flit_bits

let routing_delay_cycles t ~routers = (routers * (t.tr + t.tl)) + t.tl

let packet_delay_cycles t ~flits = t.tl * (flits - 1)

let total_delay_cycles t ~routers ~flits = (routers * (t.tr + t.tl)) + (t.tl * flits)

let cycles_to_ns t cycles = float_of_int cycles *. t.clock_ns

let pp ppf t =
  let buffering =
    match t.buffering with
    | Unbounded -> "unbounded buffers"
    | Bounded c -> Printf.sprintf "%d-flit buffers" c
  in
  Format.fprintf ppf "tr=%d tl=%d lambda=%.2fns flit=%db %s" t.tr t.tl t.clock_ns
    t.flit_bits buffering
