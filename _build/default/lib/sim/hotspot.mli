(** Link-utilization analysis of a simulation trace.

    The CDCM argument is about shared communication resources: a
    timing-blind mapping concentrates concurrent packets on few links.
    This module quantifies that by computing per-link busy time and
    ranking hotspots, which the ablation benches use to explain texec
    differences between mappings. *)

type link_load = {
  link : int;           (** {!Nocmap_noc.Link.id} slot. *)
  busy_cycles : int;    (** Cycles the link carried flits. *)
  utilization : float;  (** [busy_cycles / texec], in [0,1]. *)
  packets : int;        (** Packets that crossed the link. *)
}

val link_loads : crg:Nocmap_noc.Crg.t -> Trace.t -> link_load list
(** Loads of every physical link, busiest first.  Requires a trace
    recorded with tracing enabled (annotations present); links that
    carried no traffic report zero. *)

val peak_utilization : crg:Nocmap_noc.Crg.t -> Trace.t -> float
(** Utilization of the busiest link; 0 for an empty trace. *)

val mean_utilization : crg:Nocmap_noc.Crg.t -> Trace.t -> float
(** Mean utilization over physical links. *)

val render : crg:Nocmap_noc.Crg.t -> ?top:int -> Trace.t -> string
(** Table of the [top] (default 8) busiest links. *)
