(** Discrete-event execution of a CDCG on a CRG (Section 4 of the paper).

    Semantics, validated against the paper's Figures 3-5 worked example
    (see DESIGN.md §2):

    - a packet becomes ready when every dependence has been delivered
      ([Start] dependences at cycle 0) and is sent [compute] cycles
      later; the header enters the source router one [tl] later;
    - the contended resources are the routers' {e output ports} — one
      per directed inter-tile link — arbitrated first-come first-served
      on header arrival time; the router crossbar serves distinct output
      ports concurrently and core injection/ejection links never contend;
    - a granted port is occupied for [tr + flits*tl] cycles starting at
      the grant; the header reaches the next router [tr + tl] cycles
      after the grant;
    - delivery happens [tr + tl + (flits-1)*tl] cycles after the header
      arrival at the last router, which reduces to Equation (8) in the
      absence of contention;
    - with [Bounded c] buffering, a router's output port is not released
      until the downstream hop has been granted and the flits exceeding
      the [c]-flit downstream buffer have drained — a first-order model
      of wormhole backpressure (upstream holds cascade through the
      packet's own path; see {!Nocmap_energy.Noc_params.buffering}). *)

exception Deadlock of string
(** Raised when bounded-buffer backpressure produces a cyclic wait and
    the simulation cannot make progress (impossible with unbounded
    buffers on a dependence-acyclic CDCG). *)

val run :
  ?trace:bool ->
  params:Nocmap_energy.Noc_params.t ->
  crg:Nocmap_noc.Crg.t ->
  placement:int array ->
  Nocmap_model.Cdcg.t ->
  Trace.t
(** [run ~params ~crg ~placement cdcg] simulates the whole application.
    [placement.(core)] is the tile hosting [core]; it must be injective
    and in range.  [?trace] (default [true]) controls whether per-hop
    traces and resource annotations are recorded; switch it off inside
    optimization loops.

    @raise Invalid_argument on an ill-formed placement.
    @raise Deadlock when bounded buffering deadlocks. *)

val texec_cycles :
  params:Nocmap_energy.Noc_params.t ->
  crg:Nocmap_noc.Crg.t ->
  placement:int array ->
  Nocmap_model.Cdcg.t ->
  int
(** Convenience wrapper: execution time only, tracing disabled. *)
