module Crg = Nocmap_noc.Crg
module Mesh = Nocmap_noc.Mesh
module Link = Nocmap_noc.Link
module Cdcg = Nocmap_model.Cdcg
module Noc_params = Nocmap_energy.Noc_params

type result = {
  texec_cycles : int;
  delivered : int array;
}

(* Per-packet, per-hop progress.  [granted.(h)] is the cycle the output
   port of hop [h] started serving the packet (-1 before), and
   [buffered.(h)] counts the packet's flits currently sitting in the
   input buffer of router [h]. *)
type packet_state = {
  path : Crg.path;
  flits : int;
  mutable remaining_deps : int;
  mutable ready : int;
  mutable sent : int;        (* -1 until launched *)
  mutable injected : int;    (* flits that left the source core *)
  arrival : int array;       (* header arrival cycle per hop; -1 unknown *)
  granted : int array;
  buffered : int array;
  mutable crossed : int array;  (* flits that already left hop h *)
  mutable delivered_at : int;
}

let validate_placement ~tiles ~cores placement =
  if Array.length placement <> cores then
    invalid_arg "Flit_sim.run: placement length differs from core count";
  let used = Array.make tiles false in
  Array.iter
    (fun tile ->
      if tile < 0 || tile >= tiles then
        invalid_arg "Flit_sim.run: placement tile out of range";
      if used.(tile) then invalid_arg "Flit_sim.run: placement is not injective";
      used.(tile) <- true)
    placement

let run ~params ~crg ~placement ?(max_cycles = 10_000_000) (cdcg : Cdcg.t) =
  (match params.Noc_params.buffering with
  | Noc_params.Unbounded -> ()
  | Noc_params.Bounded _ ->
    invalid_arg "Flit_sim.run: only unbounded buffering is supported");
  if params.Noc_params.tl <> 1 then
    invalid_arg "Flit_sim.run: only tl = 1 is supported";
  let mesh = Crg.mesh crg in
  validate_placement ~tiles:(Mesh.tile_count mesh) ~cores:(Cdcg.core_count cdcg)
    placement;
  let tr = params.Noc_params.tr in
  let npackets = Cdcg.packet_count cdcg in
  let states =
    Array.map
      (fun (p : Cdcg.packet) ->
        let path =
          Crg.path crg ~src:placement.(p.Cdcg.src) ~dst:placement.(p.Cdcg.dst)
        in
        let hops = Array.length path.Crg.routers in
        {
          path;
          flits = Noc_params.flits_of_bits params p.Cdcg.bits;
          remaining_deps = 0;
          ready = 0;
          sent = -1;
          injected = 0;
          arrival = Array.make hops (-1);
          granted = Array.make hops (-1);
          buffered = Array.make hops 0;
          crossed = Array.make hops 0;
          delivered_at = -1;
        })
      cdcg.Cdcg.packets
  in
  List.iter
    (fun (_, q) -> states.(q).remaining_deps <- states.(q).remaining_deps + 1)
    cdcg.Cdcg.deps;
  let launch i time =
    let st = states.(i) in
    st.ready <- time;
    st.sent <- time + cdcg.Cdcg.packets.(i).Cdcg.compute
  in
  List.iter (fun i -> launch i 0) (Cdcg.start_packets cdcg);
  (* Output-port ownership: the packet holding the port, or -1.  A port
     is keyed by the link id of the hop it serves. *)
  let port_owner = Array.make (Link.slot_count mesh) (-1) in
  let port_free_at = Array.make (Link.slot_count mesh) 0 in
  let remaining = ref npackets in
  let deliver i time =
    let st = states.(i) in
    st.delivered_at <- time;
    decr remaining;
    List.iter
      (fun q ->
        let sq = states.(q) in
        sq.remaining_deps <- sq.remaining_deps - 1;
        sq.ready <- max sq.ready time;
        if sq.remaining_deps = 0 && sq.sent < 0 then launch q sq.ready)
      (Cdcg.successors cdcg i)
  in
  let cycle = ref 0 in
  while !remaining > 0 do
    let t = !cycle in
    if t > max_cycles then invalid_arg "Flit_sim.run: max_cycles exceeded";
    (* Phase A: flit movements decided by past grants (flits that
       crossed during cycle t-1 arrive now), plus injections. *)
    for i = 0 to npackets - 1 do
      let st = states.(i) in
      if st.sent >= 0 && st.delivered_at < 0 then begin
        let hops = Array.length st.path.Crg.routers in
        (* Injection: flit j enters the source router at sent + 1 + j. *)
        if st.injected < st.flits && t >= st.sent + 1 + st.injected then begin
          if st.injected = 0 then st.arrival.(0) <- t;
          st.buffered.(0) <- st.buffered.(0) + 1;
          st.injected <- st.injected + 1
        end;
        (* Link crossings: hop h transfers one flit during each cycle c
           in [granted + tr, granted + tr + flits - 1]; the flit lands
           in the next buffer (or the core) at c + 1. *)
        for h = 0 to hops - 1 do
          let s = st.granted.(h) in
          if s >= 0 then begin
            let c = t - 1 in
            if c >= s + tr && c < s + tr + st.flits && st.crossed.(h) < st.flits
            then begin
              if st.buffered.(h) <= 0 then
                invalid_arg "Flit_sim.run: internal bubble (buffer underrun)";
              st.buffered.(h) <- st.buffered.(h) - 1;
              st.crossed.(h) <- st.crossed.(h) + 1;
              if h = hops - 1 then begin
                if st.crossed.(h) = st.flits then deliver i t
              end
              else begin
                if st.crossed.(h) = 1 then st.arrival.(h + 1) <- t;
                st.buffered.(h + 1) <- st.buffered.(h + 1) + 1
              end
            end
          end
        done;
        (* Port release: the tail crossed at granted + tr + flits - 1,
           so the port can be re-granted from the next cycle. *)
        for h = 0 to hops - 2 do
          let s = st.granted.(h) in
          if s >= 0 && t >= s + tr + st.flits then begin
            let port = st.path.Crg.links.(h) in
            if port_owner.(port) = i then port_owner.(port) <- -1
          end
        done
      end
    done;
    (* Phase B: arbitration.  Every free output port goes to the waiting
       header with the earliest (arrival, packet index). *)
    let requests = Hashtbl.create 16 in
    for i = 0 to npackets - 1 do
      let st = states.(i) in
      if st.sent >= 0 && st.delivered_at < 0 then begin
        let hops = Array.length st.path.Crg.routers in
        for h = 0 to hops - 1 do
          if st.granted.(h) < 0 && st.arrival.(h) >= 0 && st.arrival.(h) <= t then begin
            if h = hops - 1 then
              (* Ejection never contends: the "grant" is immediate. *)
              st.granted.(h) <- st.arrival.(h)
            else begin
              let port = st.path.Crg.links.(h) in
              if port_owner.(port) < 0 && port_free_at.(port) <= t then begin
                let contender =
                  Option.value (Hashtbl.find_opt requests port) ~default:(max_int, max_int, -1)
                in
                let mine = (st.arrival.(h), i, h) in
                let better (a1, p1, _) (a2, p2, _) =
                  a1 < a2 || (a1 = a2 && p1 < p2)
                in
                if better mine contender then Hashtbl.replace requests port mine
              end
            end
          end
        done
      end
    done;
    Hashtbl.iter
      (fun port (_, i, h) ->
        let st = states.(i) in
        st.granted.(h) <- t;
        port_owner.(port) <- i;
        port_free_at.(port) <- t + tr + st.flits)
      requests;
    incr cycle
  done;
  let delivered = Array.map (fun st -> st.delivered_at) states in
  { texec_cycles = Array.fold_left max 0 delivered; delivered }
