(** Analytic (contention-free) execution-time estimation.

    Two quickly computable lower bounds on the simulated [texec]:

    + the {b critical path}: the longest ready-compute-transfer chain
      through the dependence DAG when every packet experiences exactly
      the Equation (8) delay (no buffering anywhere) — this equals the
      simulation result whenever no two packets ever compete for a link;
    + the {b link-load bound}: the busiest link must carry all its
      traffic one flit per [tl], so [texec >= max_link busy_demand].

    The estimator is orders of magnitude faster than simulation and is
    used as an ablation ("how much of texec is contention?") and as a
    sanity bound checked by property tests. *)

type estimate = {
  critical_path_cycles : int;  (** Dependence-chain bound. *)
  link_load_cycles : int;      (** Busiest-link demand bound. *)
  lower_bound_cycles : int;    (** Max of the two. *)
}

val estimate :
  params:Nocmap_energy.Noc_params.t ->
  crg:Nocmap_noc.Crg.t ->
  placement:int array ->
  Nocmap_model.Cdcg.t ->
  estimate
(** @raise Invalid_argument on an invalid placement. *)

val contention_share : estimate -> simulated_cycles:int -> float
(** Fraction of the simulated execution time not explained by the
    contention-free bound: [(sim - bound) / sim], clamped to [0, 1]. *)
