module Noc_params = Nocmap_energy.Noc_params
module Cdcg = Nocmap_model.Cdcg

let legend = "legend: = computation   r routing   - packet transfer   * contention"

type segment = {
  seg_from : int; (* inclusive cycle *)
  seg_to : int;   (* exclusive cycle *)
  glyph : char;
}

(* Classifies a packet's lifetime [ready, delivered] into contiguous
   segments.  Between hops the header is in flight on a link; those
   cycles and the tail transfer are rendered as '-'. *)
let segments_of_packet ~tr (pt : Trace.packet_trace) =
  let segs = ref [] in
  let push seg_from seg_to glyph =
    if seg_to > seg_from then segs := { seg_from; seg_to; glyph } :: !segs
  in
  push pt.Trace.ready pt.Trace.sent '=';
  let cursor = ref pt.Trace.sent in
  let hop (h : Trace.hop) =
    push !cursor h.Trace.arrival '-';
    push h.Trace.arrival h.Trace.service_start '*';
    push h.Trace.service_start (h.Trace.service_start + tr) 'r';
    cursor := h.Trace.service_start + tr
  in
  List.iter hop pt.Trace.hops;
  push !cursor (pt.Trace.delivered + 1) '-';
  List.rev !segs

let render ~params ~cdcg ?(width = 72) (trace : Trace.t) =
  if
    Array.exists
      (fun (pt : Trace.packet_trace) -> pt.Trace.hops = [])
      trace.Trace.packets
    && Array.length trace.Trace.packets > 0
  then invalid_arg "Gantt.render: trace was produced with tracing disabled";
  let tr = params.Noc_params.tr in
  let horizon = max 1 (trace.Trace.texec_cycles + 1) in
  let scale cycle = min (width - 1) (cycle * width / horizon) in
  let core_names = cdcg.Cdcg.core_names in
  let label (p : Cdcg.packet) =
    Printf.sprintf "%d(%s->%s):%d" p.Cdcg.bits core_names.(p.Cdcg.src)
      core_names.(p.Cdcg.dst) p.Cdcg.compute
  in
  let labels = Array.map label cdcg.Cdcg.packets in
  let label_width =
    Array.fold_left (fun acc s -> max acc (String.length s)) 0 labels
  in
  let buf = Buffer.create 2048 in
  let row (pt : Trace.packet_trace) =
    let line = Bytes.make width ' ' in
    let paint seg =
      let a = scale seg.seg_from and b = max (scale seg.seg_from + 1) (scale seg.seg_to) in
      for i = a to min (width - 1) (b - 1) do
        (* contention and routing marks win over transfer fill *)
        let current = Bytes.get line i in
        if current = ' ' || current = '-' then Bytes.set line i seg.glyph
      done
    in
    List.iter paint (segments_of_packet ~tr pt);
    Buffer.add_string buf
      (Printf.sprintf "%-*s |%s|\n" label_width labels.(pt.Trace.packet)
         (Bytes.to_string line))
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s  time 0 .. %d cycles (%.0f ns)\n" label_width ""
       trace.Trace.texec_cycles trace.Trace.texec_ns);
  Array.iter row trace.Trace.packets;
  Buffer.add_string buf legend;
  Buffer.add_char buf '\n';
  Buffer.contents buf
