(** CSV export of simulation results for external analysis (plotting
    latency distributions, link heat maps, etc.). *)

val packets_csv : cdcg:Nocmap_model.Cdcg.t -> Trace.t -> string
(** One row per packet:
    [label,src,dst,bits,flits,ready,sent,delivered,latency,wait_cycles].
    Core columns use core names; times are cycles. *)

val link_loads_csv : crg:Nocmap_noc.Crg.t -> Trace.t -> string
(** One row per physical link:
    [link,src_tile,dst_tile,busy_cycles,utilization,packets]. *)

val save : path:string -> string -> unit
(** Writes a CSV document to [path]. *)
