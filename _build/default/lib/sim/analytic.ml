module Crg = Nocmap_noc.Crg
module Mesh = Nocmap_noc.Mesh
module Link = Nocmap_noc.Link
module Cdcg = Nocmap_model.Cdcg
module Noc_params = Nocmap_energy.Noc_params
module Topo = Nocmap_graph.Topo

type estimate = {
  critical_path_cycles : int;
  link_load_cycles : int;
  lower_bound_cycles : int;
}

let validate_placement ~tiles ~cores placement =
  if Array.length placement <> cores then
    invalid_arg "Analytic.estimate: placement length differs from core count";
  let used = Array.make tiles false in
  Array.iter
    (fun tile ->
      if tile < 0 || tile >= tiles then
        invalid_arg "Analytic.estimate: placement tile out of range";
      if used.(tile) then invalid_arg "Analytic.estimate: placement is not injective";
      used.(tile) <- true)
    placement

let estimate ~params ~crg ~placement (cdcg : Cdcg.t) =
  validate_placement ~tiles:(Crg.tile_count crg) ~cores:(Cdcg.core_count cdcg)
    placement;
  let npackets = Cdcg.packet_count cdcg in
  let path_of i =
    let p = cdcg.Cdcg.packets.(i) in
    Crg.path crg ~src:placement.(p.Cdcg.src) ~dst:placement.(p.Cdcg.dst)
  in
  let flits_of i = Noc_params.flits_of_bits params cdcg.Cdcg.packets.(i).Cdcg.bits in
  (* Critical path: readiness propagation with eq (8) delays and no
     contention anywhere. *)
  let critical_path_cycles =
    match Topo.topological_order (Cdcg.to_digraph cdcg) with
    | None -> 0 (* validation guarantees a DAG; defensive *)
    | Some order ->
      let delivered = Array.make npackets 0 in
      let relax i =
        let ready =
          List.fold_left (fun acc p -> max acc delivered.(p)) 0 (Cdcg.predecessors cdcg i)
        in
        let routers = Array.length (path_of i).Crg.routers in
        let delay = Noc_params.total_delay_cycles params ~routers ~flits:(flits_of i) in
        delivered.(i) <- ready + cdcg.Cdcg.packets.(i).Cdcg.compute + delay
      in
      List.iter relax order;
      Array.fold_left max 0 delivered
  in
  (* Link-load bound: each link moves one flit per tl. *)
  let mesh = Crg.mesh crg in
  let demand = Array.make (Link.slot_count mesh) 0 in
  for i = 0 to npackets - 1 do
    let flit_cycles = flits_of i * params.Noc_params.tl in
    Array.iter
      (fun lid -> demand.(lid) <- demand.(lid) + flit_cycles)
      (path_of i).Crg.links
  done;
  let link_load_cycles = Array.fold_left max 0 demand in
  {
    critical_path_cycles;
    link_load_cycles;
    lower_bound_cycles = max critical_path_cycles link_load_cycles;
  }

let contention_share e ~simulated_cycles =
  if simulated_cycles <= 0 then 0.0
  else
    let share =
      float_of_int (simulated_cycles - e.lower_bound_cycles)
      /. float_of_int simulated_cycles
    in
    Float.max 0.0 (Float.min 1.0 share)
