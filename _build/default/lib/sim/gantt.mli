(** ASCII timing diagrams in the style of the paper's Figures 4 and 5.

    One row per packet, labelled ["bits(src->dst):compute"]; the
    timeline distinguishes the four delay classes of the paper's legend:
    computation ([=]), routing decisions ([r]), flit transfer ([-]) and
    contention ([*]). *)

val render :
  params:Nocmap_energy.Noc_params.t ->
  cdcg:Nocmap_model.Cdcg.t ->
  ?width:int ->
  Trace.t ->
  string
(** [render ~params ~cdcg trace] lays the packets out on a shared time
    axis scaled to [?width] (default 72) timeline columns.  Requires a
    trace produced with tracing enabled.
    @raise Invalid_argument if per-hop traces are missing. *)

val legend : string
(** The symbol legend, one line. *)
