(** Rendering of the simulator's cost-variable lists in the notation of
    the paper's Figure 3: every router and link is listed with its
    [bits(src->dst):\[enter,exit\]] entries. *)

val render :
  cdcg:Nocmap_model.Cdcg.t ->
  crg:Nocmap_noc.Crg.t ->
  Trace.t ->
  string

val router_bits : Trace.t -> int array
(** Total bits that traversed each router — the per-vertex cost
    variables once timing is summed away. *)

val link_bits : crg:Nocmap_noc.Crg.t -> Trace.t -> int array
(** Total bits over each link slot (0 for slots without a physical
    link). *)
