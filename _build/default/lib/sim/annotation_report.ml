module Interval = Nocmap_util.Interval
module Cdcg = Nocmap_model.Cdcg
module Crg = Nocmap_noc.Crg
module Link = Nocmap_noc.Link

let entry ~core_names ~packets (a : Trace.annotation) =
  let p : Cdcg.packet = packets.(a.Trace.ann_packet) in
  Printf.sprintf "%d(%s->%s):%s" a.Trace.ann_bits core_names.(p.Cdcg.src)
    core_names.(p.Cdcg.dst)
    (Interval.to_string a.Trace.ann_interval)

let render ~cdcg ~crg (trace : Trace.t) =
  let core_names = cdcg.Cdcg.core_names in
  let packets = cdcg.Cdcg.packets in
  let buf = Buffer.create 2048 in
  let mesh = Crg.mesh crg in
  let wrap = Nocmap_noc.Routing.uses_wrap_links (Crg.routing crg) in
  Array.iteri
    (fun tile annotations ->
      let cells = List.map (entry ~core_names ~packets) annotations in
      Buffer.add_string buf
        (Printf.sprintf "router %-4d %s\n" tile
           (if cells = [] then "-" else String.concat "  " cells)))
    trace.Trace.router_annotations;
  Array.iteri
    (fun lid annotations ->
      if annotations <> [] then begin
        let cells = List.map (entry ~core_names ~packets) annotations in
        Buffer.add_string buf
          (Printf.sprintf "link %-6s %s\n" (Link.to_string ~wrap mesh lid)
             (String.concat "  " cells))
      end)
    trace.Trace.link_annotations;
  Buffer.contents buf

let router_bits (trace : Trace.t) =
  Array.map
    (fun annotations ->
      List.fold_left (fun acc (a : Trace.annotation) -> acc + a.Trace.ann_bits) 0 annotations)
    trace.Trace.router_annotations

let link_bits ~crg:_ (trace : Trace.t) =
  Array.map
    (fun annotations ->
      List.fold_left (fun acc (a : Trace.annotation) -> acc + a.Trace.ann_bits) 0 annotations)
    trace.Trace.link_annotations
