lib/sim/trace.ml: List Nocmap_util
