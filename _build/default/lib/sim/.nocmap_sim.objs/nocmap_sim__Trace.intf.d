lib/sim/trace.mli: Nocmap_util
