lib/sim/trace_export.ml: Array Buffer Fun Hotspot List Nocmap_model Nocmap_noc Printf Trace
