lib/sim/analytic.ml: Array Float List Nocmap_energy Nocmap_graph Nocmap_model Nocmap_noc
