lib/sim/hotspot.ml: Array Int List Nocmap_noc Nocmap_util Printf Trace
