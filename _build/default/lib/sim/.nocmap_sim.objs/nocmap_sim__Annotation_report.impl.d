lib/sim/annotation_report.ml: Array Buffer List Nocmap_model Nocmap_noc Nocmap_util Printf String Trace
