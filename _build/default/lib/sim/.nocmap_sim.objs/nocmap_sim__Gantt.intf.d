lib/sim/gantt.mli: Nocmap_energy Nocmap_model Trace
