lib/sim/flit_sim.mli: Nocmap_energy Nocmap_model Nocmap_noc
