lib/sim/annotation_report.mli: Nocmap_model Nocmap_noc Trace
