lib/sim/wormhole.mli: Nocmap_energy Nocmap_model Nocmap_noc Trace
