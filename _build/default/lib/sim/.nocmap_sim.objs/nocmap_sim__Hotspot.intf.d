lib/sim/hotspot.mli: Nocmap_noc Trace
