lib/sim/analytic.mli: Nocmap_energy Nocmap_model Nocmap_noc
