lib/sim/gantt.ml: Array Buffer Bytes List Nocmap_energy Nocmap_model Printf String Trace
