lib/sim/wormhole.ml: Array Int List Nocmap_energy Nocmap_model Nocmap_noc Nocmap_util Printf Queue Trace
