lib/sim/trace_export.mli: Nocmap_model Nocmap_noc Trace
