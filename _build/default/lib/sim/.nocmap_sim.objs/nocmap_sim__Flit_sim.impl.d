lib/sim/flit_sim.ml: Array Hashtbl List Nocmap_energy Nocmap_model Nocmap_noc Option
