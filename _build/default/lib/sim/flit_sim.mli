(** Cycle-accurate flit-level wormhole simulator.

    An independent cross-validation of {!Wormhole}: instead of treating
    a packet's traversal as closed-form intervals, this simulator moves
    individual flits cycle by cycle through router input buffers with
    per-output-port FCFS arbitration ([tr]-cycle routing decision, one
    flit per link per [tl] cycles, unbounded input buffers).

    Under the shared model assumptions the two simulators agree exactly
    on delivery times and execution time; the property tests assert
    equality on the paper's worked example and randomized workloads.
    The flit-level simulator costs O(texec * packets) instead of
    O(events), so {!Wormhole} remains the production evaluator. *)

type result = {
  texec_cycles : int;
  delivered : int array;  (** Per packet, cycle the last flit reached the core. *)
}

val run :
  params:Nocmap_energy.Noc_params.t ->
  crg:Nocmap_noc.Crg.t ->
  placement:int array ->
  ?max_cycles:int ->
  Nocmap_model.Cdcg.t ->
  result
(** [run] simulates until every packet is delivered.
    @raise Invalid_argument on an invalid placement, a bounded-buffer
    parameter set (only the paper's unbounded mode is supported here),
    or when [max_cycles] (default 10,000,000) elapses without
    completion. *)
