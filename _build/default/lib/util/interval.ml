type t = {
  lo : int;
  hi : int;
}

let make ~lo ~hi =
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let length t = t.hi - t.lo + 1

let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let contains t x = t.lo <= x && x <= t.hi

let union_span a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let compare a b =
  match Int.compare a.lo b.lo with
  | 0 -> Int.compare a.hi b.hi
  | c -> c

let pp ppf t = Format.fprintf ppf "[%d,%d]" t.lo t.hi

let to_string t = Format.asprintf "%a" pp t

let disjoint_sorted xs =
  let sorted = List.sort compare xs in
  let rec check = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> (not (overlaps a b)) && check rest
  in
  check sorted
