(** Closed integer intervals [\[lo, hi\]] over discrete time (clock
    cycles).  The simulator's cost-variable lists annotate each NoC
    resource with the interval during which a packet occupies it, exactly
    as in Figure 3 of the paper. *)

type t = private {
  lo : int;
  hi : int;
}

val make : lo:int -> hi:int -> t
(** @raise Invalid_argument if [lo > hi]. *)

val length : t -> int
(** Number of cycles covered, [hi - lo + 1]. *)

val overlaps : t -> t -> bool
(** True when the two closed intervals share at least one cycle. *)

val contains : t -> int -> bool

val union_span : t -> t -> t
(** Smallest interval covering both arguments. *)

val compare : t -> t -> int
(** Lexicographic on [(lo, hi)]. *)

val pp : Format.formatter -> t -> unit
(** Prints as "[lo,hi]" matching the paper's annotation style. *)

val to_string : t -> string

val disjoint_sorted : t list -> bool
(** [disjoint_sorted xs] holds when the intervals, after sorting, are
    pairwise non-overlapping — the exclusivity invariant of contended
    NoC links checked by property tests. *)
