type align =
  | Left
  | Right
  | Center

type t = {
  title : string option;
  headers : string array;
  aligns : align array;
  mutable rows : string array list; (* reversed *)
  mutable summary : string array list; (* reversed *)
}

let create ?title ~columns () =
  {
    title;
    headers = Array.of_list (List.map fst columns);
    aligns = Array.of_list (List.map snd columns);
    rows = [];
    summary = [];
  }

let check_width t cells =
  if List.length cells <> Array.length t.headers then
    invalid_arg "Tablefmt.add_row: wrong number of cells"

let add_row t cells =
  check_width t cells;
  t.rows <- Array.of_list cells :: t.rows

let add_summary_row t cells =
  check_width t cells;
  t.summary <- Array.of_list cells :: t.summary

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let left = (width - n) / 2 in
      String.make left ' ' ^ s ^ String.make (width - n - left) ' '

let render t =
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  let account row =
    Array.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter account t.rows;
  List.iter account t.summary;
  let buf = Buffer.create 1024 in
  let sep_line () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_row row =
    Buffer.add_char buf '|';
    for i = 0 to ncols - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (pad t.aligns.(i) widths.(i) row.(i));
      Buffer.add_string buf " |"
    done;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | None -> ()
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n');
  sep_line ();
  emit_row t.headers;
  sep_line ();
  List.iter emit_row (List.rev t.rows);
  if t.summary <> [] then begin
    sep_line ();
    List.iter emit_row (List.rev t.summary)
  end;
  sep_line ();
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
