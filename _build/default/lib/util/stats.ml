let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (List.length xs)
    in
    sqrt var

let fold_nonempty name f = function
  | [] -> invalid_arg (name ^ ": empty list")
  | x :: xs -> List.fold_left f x xs

let minimum xs = fold_nonempty "Stats.minimum" min xs

let maximum xs = fold_nonempty "Stats.maximum" max xs

let sorted xs = List.sort compare xs

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
    let a = Array.of_list (sorted xs) in
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    a.(idx)

let median xs = percentile 50.0 xs

let reduction_percent ~baseline ~improved =
  if baseline = 0.0 then 0.0 else 100.0 *. (baseline -. improved) /. baseline

let geometric_mean = function
  | [] -> 0.0
  | xs ->
    let n = float_of_int (List.length xs) in
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)
