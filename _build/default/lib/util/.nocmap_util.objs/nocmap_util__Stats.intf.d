lib/util/stats.mli:
