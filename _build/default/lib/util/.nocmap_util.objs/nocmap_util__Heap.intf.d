lib/util/heap.mli:
