lib/util/tablefmt.mli:
