lib/util/rng.mli:
