(** Plain-text table rendering for experiment reports.

    Reproducing the paper means printing the same rows the paper prints;
    this module renders column-aligned ASCII tables with an optional
    title and a separator before trailing summary rows (the paper's
    "Average" row in Table 2). *)

type align =
  | Left
  | Right
  | Center

type t

val create : ?title:string -> columns:(string * align) list -> unit -> t
(** [create ~columns ()] starts a table whose header cells and per-column
    alignments are given by [columns]. *)

val add_row : t -> string list -> unit
(** Appends a data row.  @raise Invalid_argument if the row width differs
    from the number of columns. *)

val add_summary_row : t -> string list -> unit
(** Like {!add_row} but the row is rendered below a separator line. *)

val render : t -> string
(** Renders the table with box-drawing in plain ASCII. *)

val print : t -> unit
(** [render] followed by [print_string] and a newline flush. *)
