(** Mutable binary min-heap, used as the event queue of the wormhole
    simulator and as a priority queue in search procedures. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** O(log n) insertion. *)

val peek : 'a t -> 'a option
(** Minimum element, if any, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** Like {!pop}. @raise Invalid_argument on an empty heap. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list
(** Drains a copy of the heap; the heap itself is not modified. *)
