type t = {
  cores : int;
  packets : int;
  total_bits : int;
  dependences : int;
  communications : int;
}

let of_cdcg cdcg =
  {
    cores = Cdcg.core_count cdcg;
    packets = Cdcg.packet_count cdcg;
    total_bits = Cdcg.total_bits cdcg;
    dependences = Cdcg.dependence_count cdcg;
    communications = Cwg.ncc (Cwg.of_cdcg cdcg);
  }

let pp ppf t =
  Format.fprintf ppf "%d cores, %d packets, %d bits, %d deps, %d comms" t.cores
    t.packets t.total_bits t.dependences t.communications

let ndp_over_ncc t =
  if t.communications = 0 then 0.0
  else float_of_int (t.packets + t.dependences) /. float_of_int t.communications
