let split_packets ~max_bits (cdcg : Cdcg.t) =
  if max_bits < 1 then invalid_arg "Transform.split_packets: max_bits must be positive";
  let next_index = ref 0 in
  let pieces = Buffer.create 16 in
  ignore pieces;
  let new_packets = ref [] in
  let emit p =
    let index = !next_index in
    incr next_index;
    new_packets := p :: !new_packets;
    index
  in
  (* first.(i), last.(i): sub-packet range of original packet i. *)
  let n = Cdcg.packet_count cdcg in
  let first = Array.make n 0 and last = Array.make n 0 in
  let chain_deps = ref [] in
  Array.iteri
    (fun i (p : Cdcg.packet) ->
      if p.Cdcg.bits <= max_bits then begin
        let idx = emit p in
        first.(i) <- idx;
        last.(i) <- idx
      end
      else begin
        let segments = (p.Cdcg.bits + max_bits - 1) / max_bits in
        let base = p.Cdcg.bits / segments in
        let remainder = p.Cdcg.bits - (base * segments) in
        let previous = ref None in
        for j = 0 to segments - 1 do
          let bits = if j < remainder then base + 1 else base in
          let idx =
            emit
              {
                p with
                Cdcg.bits;
                compute = (if j = 0 then p.Cdcg.compute else 0);
                label = Printf.sprintf "%s.%d" p.Cdcg.label (j + 1);
              }
          in
          if j = 0 then first.(i) <- idx;
          if j = segments - 1 then last.(i) <- idx;
          (match !previous with
          | Some prev -> chain_deps := (prev, idx) :: !chain_deps
          | None -> ());
          previous := Some idx
        done
      end)
    cdcg.Cdcg.packets;
  let deps =
    List.map (fun (p, q) -> (last.(p), first.(q))) cdcg.Cdcg.deps
    @ List.rev !chain_deps
  in
  Cdcg.create_exn
    ~name:(cdcg.Cdcg.name ^ Printf.sprintf "-split%d" max_bits)
    ~core_names:cdcg.Cdcg.core_names
    ~packets:(Array.of_list (List.rev !new_packets))
    ~deps

let merge_statistics before after =
  Printf.sprintf "%s: %d packets (%d bits) -> %s: %d packets (%d bits)"
    (before : Cdcg.t).Cdcg.name (Cdcg.packet_count before) (Cdcg.total_bits before)
    (after : Cdcg.t).Cdcg.name (Cdcg.packet_count after) (Cdcg.total_bits after)
