(** Structural metrics of a CDCG, used to characterize workloads when
    interpreting experiment results (EXPERIMENTS.md): how deep the
    dependence chains run, how much packet-level parallelism exists and
    how the communication volume is distributed. *)

type t = {
  depth : int;
      (** Packets on the longest dependence chain (1 for independent
          packets, 0 for an empty graph). *)
  width : int;
      (** Maximum number of packets sharing the same chain depth — an
          upper estimate of peak packet-level parallelism. *)
  parallelism : float;
      (** [packets / depth]; average packets eligible per chain step. *)
  mean_bits : float;
  max_bits : int;
  volume_concentration : float;
      (** Share of the total volume carried by the largest packet, in
          [\[0, 1\]]. *)
}

val of_cdcg : Cdcg.t -> t

val pp : Format.formatter -> t -> unit
