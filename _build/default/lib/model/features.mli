(** Application feature summary — the columns of the paper's Table 1. *)

type t = {
  cores : int;         (** CWG vertex count. *)
  packets : int;       (** CDCG vertex count (excluding Start/End). *)
  total_bits : int;    (** Total communication volume over the run. *)
  dependences : int;   (** Explicit dependence edges. *)
  communications : int;(** Communicating core pairs (NCC). *)
}

val of_cdcg : Cdcg.t -> t

val pp : Format.formatter -> t -> unit

val ndp_over_ncc : t -> float
(** The complexity ratio the paper's CPU-time discussion is framed in
    (NDP / NCC); 0 when the application has no communication. *)
