(** Communication dependence and computation graph (Definition 2).

    The CDCG is the paper's central model: one vertex per packet, each a
    4-tuple [(src core, dst core, computation time, bit volume)], plus
    implicit [Start] and [End] vertices.  Dependence edges state that the
    destination packet's computation may only begin once the source
    packet has been delivered.  Packets without predecessors depend on
    [Start]; packets without successors precede [End]. *)

type packet = {
  src : int;      (** Originating core (index into {!core_names}). *)
  dst : int;      (** Destination core. *)
  compute : int;  (** Cycles of source-core computation before sending ([taq]). *)
  bits : int;     (** Packet payload in bits ([wabq]). *)
  label : string; (** Human-readable packet name, e.g. ["pEA1"]. *)
}

type t = private {
  name : string;
  core_names : string array;
  packets : packet array;
  deps : (int * int) list;  (** [(p, q)]: packet [q] waits for packet [p]. *)
}

val create :
  name:string ->
  core_names:string array ->
  packets:packet array ->
  deps:(int * int) list ->
  (t, string) result
(** Validates and builds a CDCG.  Rejected inputs: empty core set, a
    packet with [src = dst], out-of-range core or packet indices,
    non-positive bit volume, negative computation time, duplicate core
    names, or a dependence cycle (the witness cycle is reported). *)

val create_exn :
  name:string ->
  core_names:string array ->
  packets:packet array ->
  deps:(int * int) list ->
  t
(** @raise Invalid_argument with the validation message on bad input. *)

val core_count : t -> int

val packet_count : t -> int
(** Number of CDCG vertices excluding [Start]/[End] (the paper's
    "number of packets of all cores"). *)

val total_bits : t -> int
(** Table 1's "total volume of bits during application execution". *)

val dependence_count : t -> int
(** Explicit dependence edges (excludes implicit Start/End edges). *)

val ndp : t -> int
(** The paper's NDP complexity measure: dependences plus packets. *)

val predecessors : t -> int -> int list
(** Packets that must be delivered before packet [i] may start. *)

val successors : t -> int -> int list

val start_packets : t -> int list
(** Packets with no predecessor (pointed to by [Start]). *)

val packets_from : t -> src:int -> dst:int -> int list
(** Indices of all packets of the [src -> dst] communication, in
    declaration order (the paper's [P_ab]). *)

val to_digraph : t -> Nocmap_graph.Digraph.t
(** Dependence graph over packet indices; edge labels are 0. *)

val critical_path_cycles : t -> int
(** Lower bound on execution time ignoring all communication: the
    longest chain of computation times through the dependence DAG. *)

val pp_packet : core_names:string array -> Format.formatter -> packet -> unit
