type t = {
  name : string;
  core_names : string array;
  volume : int array array;
}

let duplicate_name names =
  let seen = Hashtbl.create 16 in
  let rec scan i =
    if i >= Array.length names then None
    else if Hashtbl.mem seen names.(i) then Some names.(i)
    else begin
      Hashtbl.add seen names.(i) ();
      scan (i + 1)
    end
  in
  scan 0

let create ~name ~core_names ~edges =
  let n = Array.length core_names in
  let error fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  if n = 0 then error "CWG has no cores"
  else
    match duplicate_name core_names with
    | Some dup -> error "duplicate core name %S" dup
    | None ->
      let volume = Array.make_matrix n n 0 in
      let rec fill = function
        | [] -> Ok { name; core_names; volume }
        | (src, dst, bits) :: rest ->
          if src < 0 || src >= n || dst < 0 || dst >= n then
            error "edge (%d, %d): core index out of range" src dst
          else if src = dst then error "edge (%d, %d): self communication" src dst
          else if bits <= 0 then error "edge (%d, %d): volume must be positive" src dst
          else begin
            volume.(src).(dst) <- volume.(src).(dst) + bits;
            fill rest
          end
      in
      fill edges

let create_exn ~name ~core_names ~edges =
  match create ~name ~core_names ~edges with
  | Ok t -> t
  | Error msg -> invalid_arg ("Cwg.create_exn: " ^ msg)

let of_cdcg (cdcg : Cdcg.t) =
  let edges =
    Array.fold_left
      (fun acc (p : Cdcg.packet) -> (p.Cdcg.src, p.Cdcg.dst, p.Cdcg.bits) :: acc)
      [] cdcg.Cdcg.packets
  in
  create_exn ~name:cdcg.Cdcg.name ~core_names:cdcg.Cdcg.core_names ~edges

let core_count t = Array.length t.core_names

let weight t ~src ~dst =
  let n = core_count t in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Cwg.weight: core index out of range";
  t.volume.(src).(dst)

let communications t =
  let n = core_count t in
  let acc = ref [] in
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if t.volume.(src).(dst) > 0 then acc := (src, dst, t.volume.(src).(dst)) :: !acc
    done
  done;
  !acc

let ncc t = List.length (communications t)

let total_bits t =
  List.fold_left (fun acc (_, _, w) -> acc + w) 0 (communications t)

let to_digraph t =
  let g = Nocmap_graph.Digraph.create ~n:(core_count t) in
  List.iter
    (fun (src, dst, w) -> Nocmap_graph.Digraph.add_edge g ~src ~dst ~label:w)
    (communications t);
  g
