type packet = {
  src : int;
  dst : int;
  compute : int;
  bits : int;
  label : string;
}

type t = {
  name : string;
  core_names : string array;
  packets : packet array;
  deps : (int * int) list;
}

let duplicate_name names =
  let seen = Hashtbl.create 16 in
  let rec scan i =
    if i >= Array.length names then None
    else if Hashtbl.mem seen names.(i) then Some names.(i)
    else begin
      Hashtbl.add seen names.(i) ();
      scan (i + 1)
    end
  in
  scan 0

let to_digraph_raw packets deps =
  let g = Nocmap_graph.Digraph.create ~n:(Array.length packets) in
  List.iter (fun (p, q) -> Nocmap_graph.Digraph.add_edge g ~src:p ~dst:q ~label:0) deps;
  g

let validate ~core_names ~packets ~deps =
  let ncores = Array.length core_names in
  let npackets = Array.length packets in
  let error fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  if ncores = 0 then error "CDCG has no cores"
  else
    match duplicate_name core_names with
    | Some dup -> error "duplicate core name %S" dup
    | None ->
      let bad_packet =
        let check i p =
          if p.src < 0 || p.src >= ncores then Some (i, "source core out of range")
          else if p.dst < 0 || p.dst >= ncores then Some (i, "destination core out of range")
          else if p.src = p.dst then Some (i, "source equals destination")
          else if p.bits <= 0 then Some (i, "bit volume must be positive")
          else if p.compute < 0 then Some (i, "computation time must be non-negative")
          else None
        in
        let rec scan i =
          if i >= npackets then None
          else
            match check i packets.(i) with
            | Some _ as bad -> bad
            | None -> scan (i + 1)
        in
        scan 0
      in
      (match bad_packet with
      | Some (i, why) -> error "packet %d (%s): %s" i packets.(i).label why
      | None ->
        let bad_dep =
          List.find_opt (fun (p, q) -> p < 0 || p >= npackets || q < 0 || q >= npackets) deps
        in
        (match bad_dep with
        | Some (p, q) -> error "dependence (%d, %d): packet index out of range" p q
        | None ->
          let g = to_digraph_raw packets deps in
          (match Nocmap_graph.Topo.cycle g with
          | Some cyc ->
            let names = List.map (fun i -> packets.(i).label) cyc in
            error "dependence cycle: %s" (String.concat " -> " names)
          | None -> Ok ())))

let create ~name ~core_names ~packets ~deps =
  match validate ~core_names ~packets ~deps with
  | Error _ as e -> e
  | Ok () -> Ok { name; core_names; packets; deps }

let create_exn ~name ~core_names ~packets ~deps =
  match create ~name ~core_names ~packets ~deps with
  | Ok t -> t
  | Error msg -> invalid_arg ("Cdcg.create_exn: " ^ msg)

let core_count t = Array.length t.core_names

let packet_count t = Array.length t.packets

let total_bits t = Array.fold_left (fun acc p -> acc + p.bits) 0 t.packets

let dependence_count t = List.length t.deps

let ndp t = dependence_count t + packet_count t

let predecessors t i = List.filter_map (fun (p, q) -> if q = i then Some p else None) t.deps

let successors t i = List.filter_map (fun (p, q) -> if p = i then Some q else None) t.deps

let start_packets t =
  let has_pred = Array.make (packet_count t) false in
  List.iter (fun (_, q) -> has_pred.(q) <- true) t.deps;
  List.filter (fun i -> not has_pred.(i)) (List.init (packet_count t) Fun.id)

let packets_from t ~src ~dst =
  List.filter
    (fun i -> t.packets.(i).src = src && t.packets.(i).dst = dst)
    (List.init (packet_count t) Fun.id)

let to_digraph t = to_digraph_raw t.packets t.deps

let critical_path_cycles t =
  match
    Nocmap_graph.Topo.longest_path_lengths (to_digraph t) ~weight:(fun i ->
        t.packets.(i).compute)
  with
  | None -> 0
  | Some dist -> Array.fold_left max 0 dist

let pp_packet ~core_names ppf p =
  Format.fprintf ppf "%s: %d bits %s->%s after %d cycles" p.label p.bits
    core_names.(p.src) core_names.(p.dst) p.compute
