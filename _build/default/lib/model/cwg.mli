(** Communication weighted graph (Definition 1).

    Cores as vertices; the edge [a -> b] carries [w_ab], the total
    number of bits of all packets sent from core [a] to core [b].  This
    is the model used by the CWM mapping algorithm (and equivalent to
    [4]'s APCG and [5]'s core graph). *)

type t = private {
  name : string;
  core_names : string array;
  volume : int array array;  (** [volume.(a).(b)] is [w_ab]; 0 when absent. *)
}

val create :
  name:string ->
  core_names:string array ->
  edges:(int * int * int) list ->
  (t, string) result
(** [edges] are [(src, dst, bits)] triples; repeated pairs accumulate.
    Rejected inputs: empty core set, duplicate core names, out-of-range
    indices, self edges, non-positive volumes. *)

val create_exn :
  name:string -> core_names:string array -> edges:(int * int * int) list -> t
(** @raise Invalid_argument on bad input. *)

val of_cdcg : Cdcg.t -> t
(** Projection that forgets timing: [w_ab] is the sum of the bit volumes
    of all packets from [a] to [b].  CWM sees exactly this view. *)

val core_count : t -> int

val weight : t -> src:int -> dst:int -> int
(** [w_ab], 0 when the cores do not communicate. *)

val communications : t -> (int * int * int) list
(** All [(src, dst, w_ab)] with positive volume, ordered by [(src, dst)].
    Its length is the paper's NCC complexity measure. *)

val ncc : t -> int
(** Number of communicating core pairs. *)

val total_bits : t -> int

val to_digraph : t -> Nocmap_graph.Digraph.t
(** Vertices are cores; edge labels are bit volumes. *)
