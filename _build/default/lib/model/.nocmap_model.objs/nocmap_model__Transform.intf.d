lib/model/transform.mli: Cdcg
