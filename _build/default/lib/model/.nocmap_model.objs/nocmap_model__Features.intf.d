lib/model/features.mli: Cdcg Format
