lib/model/transform.ml: Array Buffer Cdcg List Printf
