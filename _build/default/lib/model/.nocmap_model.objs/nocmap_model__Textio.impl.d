lib/model/textio.ml: Array Buffer Cdcg Cwg Fun Hashtbl List Printf String
