lib/model/metrics.ml: Array Cdcg Format Hashtbl Nocmap_graph Option
