lib/model/textio.mli: Cdcg Cwg
