lib/model/cdcg.ml: Array Format Fun Hashtbl List Nocmap_graph Printf String
