lib/model/features.ml: Cdcg Cwg Format
