lib/model/cwg.ml: Array Cdcg Hashtbl List Nocmap_graph Printf
