lib/model/metrics.mli: Cdcg Format
