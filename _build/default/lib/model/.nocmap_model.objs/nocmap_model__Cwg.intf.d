lib/model/cwg.mli: Cdcg Nocmap_graph
