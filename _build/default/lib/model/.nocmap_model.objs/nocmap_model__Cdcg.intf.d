lib/model/cdcg.mli: Format Nocmap_graph
