module Topo = Nocmap_graph.Topo

type t = {
  depth : int;
  width : int;
  parallelism : float;
  mean_bits : float;
  max_bits : int;
  volume_concentration : float;
}

let of_cdcg cdcg =
  let n = Cdcg.packet_count cdcg in
  if n = 0 then
    {
      depth = 0;
      width = 0;
      parallelism = 0.0;
      mean_bits = 0.0;
      max_bits = 0;
      volume_concentration = 0.0;
    }
  else begin
    (* Chain depth of each packet: 1 + max over predecessors. *)
    let levels =
      match Topo.longest_path_lengths (Cdcg.to_digraph cdcg) ~weight:(fun _ -> 1) with
      | Some levels -> levels
      | None -> Array.make n 1 (* CDCGs are validated DAGs; defensive *)
    in
    let depth = Array.fold_left max 0 levels in
    let per_level = Hashtbl.create 16 in
    Array.iter
      (fun level ->
        Hashtbl.replace per_level level
          (1 + Option.value (Hashtbl.find_opt per_level level) ~default:0))
      levels;
    let width = Hashtbl.fold (fun _ count acc -> max count acc) per_level 0 in
    let total = Cdcg.total_bits cdcg in
    let max_bits =
      Array.fold_left
        (fun acc (p : Cdcg.packet) -> max acc p.Cdcg.bits)
        0
        (cdcg : Cdcg.t).Cdcg.packets
    in
    {
      depth;
      width;
      parallelism = float_of_int n /. float_of_int depth;
      mean_bits = float_of_int total /. float_of_int n;
      max_bits;
      volume_concentration = float_of_int max_bits /. float_of_int total;
    }
  end

let pp ppf t =
  Format.fprintf ppf
    "depth %d, width %d, parallelism %.2f, mean %.0f bits, max %d bits (%.0f%% of volume)"
    t.depth t.width t.parallelism t.mean_bits t.max_bits
    (100.0 *. t.volume_concentration)
