(** CDCG transformations.

    {!split_packets} implements packetization: breaking messages into
    bounded-size packets, the knob studied by Ye, Benini & De Micheli
    [7] whose routing/packetization analysis the paper builds on.
    Under CDCG dependence semantics the sub-packets of one message are
    chained on delivery, so a split message releases every link between
    its pieces — other traffic can interleave and head-of-line blocking
    shrinks — at the price of paying the routing latency once per piece.
    The bench harness measures this trade-off. *)

val split_packets : max_bits:int -> Cdcg.t -> Cdcg.t
(** Splits every packet larger than [max_bits] into a chain of
    sub-packets of at most [max_bits] bits each:

    - the first sub-packet inherits the original computation time and
      dependences; later sub-packets have zero computation and depend on
      their predecessor in the chain (the core streams the message);
    - packets that depended on the original packet depend on the last
      sub-packet (the message is complete only when its tail arrives);
    - total bit volume is preserved exactly.

    @raise Invalid_argument when [max_bits < 1]. *)

val merge_statistics : Cdcg.t -> Cdcg.t -> string
(** One-line before/after summary used by reports. *)
