(** TGFF-like random CDCG benchmark generator.

    The paper's random benchmarks come from "a proprietary system,
    similar to TGFF; however, the system describes benchmarks through
    CDCGs, representing message dependence and bit volume of each
    message".  This module is the open substitute: it synthesizes CDCGs
    with a controlled number of cores, packets, communicating pairs and
    an exact total bit volume, so every Table 1 row can be regenerated
    with matching published statistics.

    Construction:
    + a connected communication skeleton over the cores (a ring plus
      random chords) fixes which core pairs talk;
    + each packet picks a skeleton edge, every edge at least once;
    + dependences go from earlier to later packets (hence acyclic), with
      a locality bias: a packet preferentially depends on a packet that
      was delivered to its own source core (receive-compute-send
      chains), mimicking real streaming applications;
    + bit volumes are drawn log-uniformly and then scaled by the largest
      remainder method to hit [total_bits] exactly (each >= 1 bit). *)

type spec = {
  name : string;
  cores : int;
  packets : int;
  total_bits : int;
  communications : int option;
      (** Number of communicating core pairs; [None] uses
          [min packets (cores + packets/4)]. *)
  compute_range : int * int;  (** Uniform per-packet computation cycles. *)
  root_fraction : float;      (** Fraction of packets depending on Start only. *)
  locality : float;           (** Probability a dependence follows a
                                  receive-compute-send chain. *)
  max_deps : int;             (** Upper bound on dependences per packet. *)
  volume_log_range : float;   (** Bit volumes are drawn as [exp(U(0, r))]
                                  before scaling; larger values give a
                                  heavier-tailed volume distribution. *)
  hubs : int;                 (** Number of hub cores; communication pairs
                                  preferentially involve a hub (master/DSP/
                                  shared-memory style traffic).  0 gives a
                                  ring-plus-chords skeleton. *)
}

val default_spec : name:string -> cores:int -> packets:int -> total_bits:int -> spec
(** [communications = None], [compute_range = (5, 50)],
    [root_fraction = 0.08], [locality = 0.7], [max_deps = 3],
    [volume_log_range = 3.0], [hubs = 1]. *)

val generate : Nocmap_util.Rng.t -> spec -> Nocmap_model.Cdcg.t
(** Deterministic for a given generator state; the result always
    validates.
    @raise Invalid_argument on inconsistent specs (fewer packets than
    communicating pairs, fewer than 2 cores, [total_bits < packets],
    or out-of-range probabilities). *)
