(** The 18-application benchmark suite of the paper's Table 1.

    Each row regenerates an application whose published statistics (NoC
    size, number of cores, number of packets, total bit volume) match
    Table 1 exactly; the graph structure itself is synthesized by
    {!Generator} (see DESIGN.md on this substitution). *)

type row = {
  mesh : Nocmap_noc.Mesh.t;
  spec : Generator.spec;
}

val rows : row list
(** The 18 rows in the paper's order: three applications for each small
    NoC size (3x2, 2x4, 3x3, 2x5, 3x4) and one each for 8x8, 10x10 and
    12x10. *)

val instances : seed:int -> (Nocmap_noc.Mesh.t * Nocmap_model.Cdcg.t) list
(** Deterministically generates all 18 applications. *)

val small_sizes : Nocmap_noc.Mesh.t list
(** The NoC sizes where exhaustive search is still tractable
    (the paper's "ES and SA" group): 3x2, 2x4, 3x3, 2x5, 3x4. *)

val large_sizes : Nocmap_noc.Mesh.t list
(** 8x8, 10x10, 12x10 — simulated annealing only. *)
