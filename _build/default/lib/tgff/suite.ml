module Mesh = Nocmap_noc.Mesh
module Rng = Nocmap_util.Rng

type row = {
  mesh : Mesh.t;
  spec : Generator.spec;
}

let row ~mesh ~idx ~cores ~packets ~total_bits =
  let mesh = Mesh.of_string mesh in
  {
    mesh;
    spec =
      Generator.default_spec
        ~name:(Printf.sprintf "%s-app%d" (Mesh.to_string mesh) idx)
        ~cores ~packets ~total_bits;
  }

(* Table 1 of the paper, row for row. *)
let rows =
  [
    row ~mesh:"3x2" ~idx:1 ~cores:5 ~packets:43 ~total_bits:78_817;
    row ~mesh:"3x2" ~idx:2 ~cores:6 ~packets:17 ~total_bits:174;
    row ~mesh:"3x2" ~idx:3 ~cores:6 ~packets:43 ~total_bits:49_003;
    row ~mesh:"2x4" ~idx:1 ~cores:5 ~packets:16 ~total_bits:1_600;
    row ~mesh:"2x4" ~idx:2 ~cores:7 ~packets:33 ~total_bits:23_235;
    row ~mesh:"2x4" ~idx:3 ~cores:8 ~packets:18 ~total_bits:5_930;
    row ~mesh:"3x3" ~idx:1 ~cores:7 ~packets:16 ~total_bits:1_600;
    row ~mesh:"3x3" ~idx:2 ~cores:9 ~packets:18 ~total_bits:1_860;
    row ~mesh:"3x3" ~idx:3 ~cores:9 ~packets:32 ~total_bits:43_120;
    row ~mesh:"2x5" ~idx:1 ~cores:8 ~packets:24 ~total_bits:2_215;
    row ~mesh:"2x5" ~idx:2 ~cores:9 ~packets:51 ~total_bits:23_244;
    row ~mesh:"2x5" ~idx:3 ~cores:10 ~packets:22 ~total_bits:322_221;
    row ~mesh:"3x4" ~idx:1 ~cores:10 ~packets:15 ~total_bits:3_100;
    row ~mesh:"3x4" ~idx:2 ~cores:12 ~packets:25 ~total_bits:2_578_920;
    (* The paper lists 14 cores here, but a 3x4 NoC only has 12 tiles
       and the mapping is injective; we use 12 (see EXPERIMENTS.md). *)
    row ~mesh:"3x4" ~idx:3 ~cores:12 ~packets:88 ~total_bits:115_778;
    row ~mesh:"8x8" ~idx:1 ~cores:62 ~packets:344 ~total_bits:9_799_200;
    row ~mesh:"10x10" ~idx:1 ~cores:93 ~packets:415 ~total_bits:562_565_990;
    row ~mesh:"12x10" ~idx:1 ~cores:99 ~packets:446 ~total_bits:680_006_120;
  ]

let instances ~seed =
  let rng = Rng.create ~seed in
  List.map (fun r -> (r.mesh, Generator.generate (Rng.split rng) r.spec)) rows

let small_sizes = List.map Mesh.of_string [ "3x2"; "2x4"; "3x3"; "2x5"; "3x4" ]

let large_sizes = List.map Mesh.of_string [ "8x8"; "10x10"; "12x10" ]
