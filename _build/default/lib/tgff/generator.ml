module Rng = Nocmap_util.Rng
module Cdcg = Nocmap_model.Cdcg

type spec = {
  name : string;
  cores : int;
  packets : int;
  total_bits : int;
  communications : int option;
  compute_range : int * int;
  root_fraction : float;
  locality : float;
  max_deps : int;
  volume_log_range : float;
  hubs : int;
}

let default_spec ~name ~cores ~packets ~total_bits =
  {
    name;
    cores;
    packets;
    total_bits;
    communications = None;
    compute_range = (5, 50);
    root_fraction = 0.08;
    locality = 0.7;
    max_deps = 3;
    volume_log_range = 3.0;
    hubs = 1;
  }

let check spec =
  let fail msg = invalid_arg ("Generator.generate: " ^ msg) in
  if spec.cores < 2 then fail "need at least two cores";
  if spec.packets < 1 then fail "need at least one packet";
  if spec.total_bits < spec.packets then fail "total_bits must cover one bit per packet";
  let lo, hi = spec.compute_range in
  if lo < 0 || hi < lo then fail "bad compute_range";
  if spec.root_fraction < 0.0 || spec.root_fraction > 1.0 then fail "bad root_fraction";
  if spec.locality < 0.0 || spec.locality > 1.0 then fail "bad locality";
  if spec.max_deps < 1 then fail "max_deps must be at least 1";
  if spec.volume_log_range < 0.0 then fail "volume_log_range must be non-negative";
  if spec.hubs < 0 || spec.hubs >= spec.cores then fail "hubs must lie in [0, cores)"

let default_communications spec = min spec.packets (spec.cores + (spec.packets / 4))

(* Connected skeleton over the cores.  With [hubs = 0]: a ring over a
   random core permutation plus random chords until [count] distinct
   directed pairs exist.  With hubs: every non-hub core exchanges data
   with some hub in both directions (master/worker traffic), plus random
   chords. *)
let skeleton rng ~cores ~hubs ~count =
  let count = max (min count (cores * (cores - 1))) (min cores count) in
  let order = Array.init cores Fun.id in
  Rng.shuffle_in_place rng order;
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  let add src dst =
    if src <> dst && not (Hashtbl.mem seen (src, dst)) then begin
      Hashtbl.add seen (src, dst) ();
      edges := (src, dst) :: !edges
    end
  in
  if hubs = 0 then
    for i = 0 to cores - 1 do
      if List.length !edges < count then add order.(i) order.((i + 1) mod cores)
    done
  else begin
    (* Cover every non-hub core with a hub->core edge first so no core
       is left silent, then add the return directions while room
       remains. *)
    let hub_of = Array.init cores (fun i -> order.(i mod hubs)) in
    Array.iteri
      (fun i core ->
        if i >= hubs && List.length !edges < count then add hub_of.(i) core)
      order;
    Array.iteri
      (fun i core ->
        if i >= hubs && List.length !edges < count then add core hub_of.(i))
      order
  end;
  while List.length !edges < count do
    add (Rng.int rng cores) (Rng.int rng cores)
  done;
  Array.of_list (List.rev !edges)

(* Log-uniform raw weights scaled to sum exactly to [total], each >= 1:
   give every packet 1 bit, then distribute the remainder by largest
   fractional share. *)
let volumes rng ~packets ~total ~log_range =
  let raw = Array.init packets (fun _ -> exp (Rng.float rng log_range)) in
  let raw_sum = Array.fold_left ( +. ) 0.0 raw in
  let spare = total - packets in
  let shares = Array.map (fun w -> float_of_int spare *. w /. raw_sum) raw in
  let base = Array.map int_of_float shares in
  let assigned = Array.fold_left ( + ) 0 base in
  let order = Array.init packets Fun.id in
  Array.sort
    (fun a b ->
      compare (shares.(b) -. Float.of_int base.(b)) (shares.(a) -. Float.of_int base.(a)))
    order;
  let leftover = spare - assigned in
  for i = 0 to leftover - 1 do
    let idx = order.(i mod packets) in
    base.(idx) <- base.(idx) + 1
  done;
  Array.map (fun b -> b + 1) base

let generate rng spec =
  check spec;
  let count =
    match spec.communications with
    | Some c ->
      if c > spec.packets then
        invalid_arg "Generator.generate: more communicating pairs than packets";
      c
    | None -> default_communications spec
  in
  let edges = skeleton rng ~cores:spec.cores ~hubs:spec.hubs ~count in
  let nedges = Array.length edges in
  (* Every skeleton edge carries at least one packet; the rest are
     drawn uniformly. *)
  let pair_of_packet =
    Array.init spec.packets (fun i -> if i < nedges then edges.(i) else Rng.choose rng edges)
  in
  Rng.shuffle_in_place rng pair_of_packet;
  let bits = volumes rng ~packets:spec.packets ~total:spec.total_bits ~log_range:spec.volume_log_range in
  let lo, hi = spec.compute_range in
  let core_names = Array.init spec.cores (fun i -> Printf.sprintf "c%d" i) in
  let packets =
    Array.init spec.packets (fun i ->
        let src, dst = pair_of_packet.(i) in
        {
          Cdcg.src;
          dst;
          compute = Rng.int_in rng lo hi;
          bits = bits.(i);
          label = Printf.sprintf "p%d" i;
        })
  in
  (* Dependences only point forward in index order, so the CDCG is a DAG
     by construction.  [latest_delivery.(core)] tracks the most recent
     packet delivered to each core for the locality bias. *)
  let latest_delivery = Array.make spec.cores None in
  let deps = ref [] in
  for q = 0 to spec.packets - 1 do
    if q > 0 && Rng.float rng 1.0 >= spec.root_fraction then begin
      let wanted = 1 + Rng.int rng spec.max_deps in
      let chosen = Hashtbl.create 4 in
      for _ = 1 to wanted do
        let candidate =
          if Rng.float rng 1.0 < spec.locality then latest_delivery.(packets.(q).Cdcg.src)
          else Some (Rng.int rng q)
        in
        match candidate with
        | Some p when p <> q && not (Hashtbl.mem chosen p) ->
          Hashtbl.add chosen p ();
          deps := (p, q) :: !deps
        | Some _ | None -> ()
      done
    end;
    latest_delivery.(packets.(q).Cdcg.dst) <- Some q
  done;
  Cdcg.create_exn ~name:spec.name ~core_names ~packets ~deps:(List.rev !deps)
