lib/tgff/generator.ml: Array Float Fun Hashtbl List Nocmap_model Nocmap_util Printf
