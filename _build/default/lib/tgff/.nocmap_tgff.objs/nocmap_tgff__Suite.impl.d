lib/tgff/suite.ml: Generator List Nocmap_noc Nocmap_util Printf
