lib/tgff/suite.mli: Generator Nocmap_model Nocmap_noc
