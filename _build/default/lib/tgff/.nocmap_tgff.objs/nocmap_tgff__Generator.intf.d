lib/tgff/generator.mli: Nocmap_model Nocmap_util
