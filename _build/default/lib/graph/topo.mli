(** Order-theoretic algorithms on {!Digraph.t}: the CDCG is required to
    be a DAG between [Start] and [End], and the simulator's readiness
    propagation is a topological sweep. *)

val topological_order : Digraph.t -> int list option
(** Kahn's algorithm.  [Some order] lists every vertex with all edge
    sources before their destinations; [None] when the graph has a
    cycle. *)

val is_dag : Digraph.t -> bool

val cycle : Digraph.t -> int list option
(** A witness cycle as a vertex list [v1; ...; vk] with edges
    [v1->v2-> ... ->vk->v1], or [None] for a DAG.  Used to produce
    actionable validation errors for hand-written CDCG files. *)

val reachable_from : Digraph.t -> int -> bool array
(** Forward reachability (including the start vertex itself). *)

val longest_path_lengths : Digraph.t -> weight:(int -> int) -> int array option
(** For a DAG, the maximum total vertex [weight] over paths ending at
    each vertex (the critical-path lower bound on execution time used by
    search heuristics).  [None] on cyclic input. *)
