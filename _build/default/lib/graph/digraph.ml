type t = {
  n : int;
  succ : (int * int) list array; (* reversed insertion order *)
  pred : (int * int) list array;
  mutable edges : int;
}

let create ~n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { n; succ = Array.make n []; pred = Array.make n []; edges = 0 }

let vertex_count t = t.n

let edge_count t = t.edges

let check_vertex t v name =
  if v < 0 || v >= t.n then invalid_arg ("Digraph." ^ name ^ ": vertex out of range")

let add_edge t ~src ~dst ~label =
  check_vertex t src "add_edge";
  check_vertex t dst "add_edge";
  t.succ.(src) <- (dst, label) :: t.succ.(src);
  t.pred.(dst) <- (src, label) :: t.pred.(dst);
  t.edges <- t.edges + 1

let successors t v =
  check_vertex t v "successors";
  List.rev t.succ.(v)

let predecessors t v =
  check_vertex t v "predecessors";
  List.rev t.pred.(v)

let mem_edge t ~src ~dst =
  check_vertex t src "mem_edge";
  check_vertex t dst "mem_edge";
  List.exists (fun (d, _) -> d = dst) t.succ.(src)

let label t ~src ~dst =
  check_vertex t src "label";
  check_vertex t dst "label";
  match List.find_opt (fun (d, _) -> d = dst) (List.rev t.succ.(src)) with
  | Some (_, lbl) -> lbl
  | None -> raise Not_found

let out_degree t v =
  check_vertex t v "out_degree";
  List.length t.succ.(v)

let in_degree t v =
  check_vertex t v "in_degree";
  List.length t.pred.(v)

let iter_edges t f =
  for src = 0 to t.n - 1 do
    let each (dst, lbl) = f ~src ~dst ~label:lbl in
    List.iter each (List.rev t.succ.(src))
  done

let fold_edges t ~init ~f =
  let acc = ref init in
  iter_edges t (fun ~src ~dst ~label -> acc := f !acc ~src ~dst ~label);
  !acc

let transpose t =
  let g = create ~n:t.n in
  iter_edges t (fun ~src ~dst ~label -> add_edge g ~src:dst ~dst:src ~label);
  g

let map_labels t ~f =
  let g = create ~n:t.n in
  iter_edges t (fun ~src ~dst ~label -> add_edge g ~src ~dst ~label:(f ~src ~dst ~label));
  g
