lib/graph/digraph.mli:
