let topological_order g =
  let n = Digraph.vertex_count g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let rec drain acc seen =
    if Queue.is_empty queue then (acc, seen)
    else begin
      let v = Queue.pop queue in
      let relax (w, _) =
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue
      in
      List.iter relax (Digraph.successors g v);
      drain (v :: acc) (seen + 1)
    end
  in
  let acc, seen = drain [] 0 in
  if seen = n then Some (List.rev acc) else None

let is_dag g = topological_order g <> None

(* Iterative DFS with colors; on finding a back edge, reconstruct the
   cycle from the parent chain. *)
let cycle g =
  let n = Digraph.vertex_count g in
  let color = Array.make n `White in
  let parent = Array.make n (-1) in
  let found = ref None in
  let rec dfs v =
    color.(v) <- `Gray;
    let visit (w, _) =
      if !found = None then
        match color.(w) with
        | `White ->
          parent.(w) <- v;
          dfs w
        | `Gray ->
          (* back edge v -> w closes a cycle w -> ... -> v -> w *)
          let rec climb u acc = if u = w then u :: acc else climb parent.(u) (u :: acc) in
          found := Some (climb v [])
        | `Black -> ()
    in
    List.iter visit (Digraph.successors g v);
    color.(v) <- `Black
  in
  let rec scan v =
    if v < n && !found = None then begin
      if color.(v) = `White then dfs v;
      scan (v + 1)
    end
  in
  scan 0;
  !found

let reachable_from g start =
  let n = Digraph.vertex_count g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(start) <- true;
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let visit (w, _) =
      if not seen.(w) then begin
        seen.(w) <- true;
        Queue.add w queue
      end
    in
    List.iter visit (Digraph.successors g v)
  done;
  seen

let longest_path_lengths g ~weight =
  match topological_order g with
  | None -> None
  | Some order ->
    let n = Digraph.vertex_count g in
    let dist = Array.make n 0 in
    let relax v =
      let best =
        List.fold_left
          (fun acc (p, _) -> max acc dist.(p))
          0 (Digraph.predecessors g v)
      in
      dist.(v) <- best + weight v
    in
    List.iter relax order;
    Some dist
