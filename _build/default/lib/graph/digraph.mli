(** Compact directed graphs over integer vertices [0 .. n-1].

    This is the shared substrate beneath the application models (CWG,
    CDCG) and the NoC resource graph (CRG).  Vertices are dense integer
    identifiers; payloads live in caller-side arrays indexed by vertex.
    Edges may be added with an integer label (bit volumes, path costs);
    unlabeled edges use label [0]. *)

type t

val create : n:int -> t
(** [create ~n] is a graph with vertices [0..n-1] and no edges. *)

val vertex_count : t -> int

val edge_count : t -> int

val add_edge : t -> src:int -> dst:int -> label:int -> unit
(** Adds a directed edge.  Parallel edges are allowed (the CDCG has one
    dependence edge per packet pair).
    @raise Invalid_argument if an endpoint is out of range. *)

val mem_edge : t -> src:int -> dst:int -> bool

val label : t -> src:int -> dst:int -> int
(** Label of the first [src -> dst] edge.
    @raise Not_found if absent. *)

val successors : t -> int -> (int * int) list
(** [(dst, label)] pairs in insertion order. *)

val predecessors : t -> int -> (int * int) list
(** [(src, label)] pairs in insertion order. *)

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val iter_edges : t -> (src:int -> dst:int -> label:int -> unit) -> unit

val fold_edges : t -> init:'a -> f:('a -> src:int -> dst:int -> label:int -> 'a) -> 'a

val transpose : t -> t
(** Graph with every edge reversed. *)

val map_labels : t -> f:(src:int -> dst:int -> label:int -> int) -> t
