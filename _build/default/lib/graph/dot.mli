(** Graphviz DOT export so that CWGs, CDCGs and mapped CRGs can be
    inspected visually. *)

val render :
  ?graph_name:string ->
  vertex_name:(int -> string) ->
  ?vertex_attrs:(int -> (string * string) list) ->
  ?edge_attrs:(src:int -> dst:int -> label:int -> (string * string) list) ->
  Digraph.t ->
  string
(** [render ~vertex_name g] produces a [digraph { ... }] document.
    Attribute callbacks return [(key, value)] pairs; values are quoted
    and escaped by this module. *)

val save : path:string -> string -> unit
(** Writes a rendered document to [path]. *)
