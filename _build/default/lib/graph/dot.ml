let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attrs_to_string = function
  | [] -> ""
  | attrs ->
    let cell (k, v) = Printf.sprintf "%s=\"%s\"" k (escape v) in
    " [" ^ String.concat ", " (List.map cell attrs) ^ "]"

let render ?(graph_name = "g") ~vertex_name ?(vertex_attrs = fun _ -> [])
    ?(edge_attrs = fun ~src:_ ~dst:_ ~label:_ -> []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape graph_name));
  for v = 0 to Digraph.vertex_count g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  \"%s\"%s;\n" (escape (vertex_name v)) (attrs_to_string (vertex_attrs v)))
  done;
  Digraph.iter_edges g (fun ~src ~dst ~label ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\"%s;\n"
           (escape (vertex_name src))
           (escape (vertex_name dst))
           (attrs_to_string (edge_attrs ~src ~dst ~label))));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save ~path doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc doc)
