let make ?(frames = 4) ?(extractors = 3) ?(frame_bits = 4096) ?(region_bits = 1024)
    ?(descriptor_bits = 256) ?(stage_compute = 30) () =
  if frames < 1 || extractors < 1 then
    invalid_arg "Object_recognition.make: frames and extractors must be positive";
  let names =
    [ "cam"; "pre"; "seg" ]
    @ List.init extractors (fun i -> Printf.sprintf "fe%d" (i + 1))
    @ [ "cls"; "sink" ]
  in
  let b =
    App_builder.create
      ~name:(Printf.sprintf "objrec-f%d-e%d" frames extractors)
      ~core_names:names
  in
  let cam = App_builder.core b "cam" in
  let pre = App_builder.core b "pre" in
  let seg = App_builder.core b "seg" in
  let fe i = App_builder.core b (Printf.sprintf "fe%d" (i + 1)) in
  let cls = App_builder.core b "cls" in
  let sink = App_builder.core b "sink" in
  (* Last packet emitted by each producing stage, for serialization. *)
  let last_of = Hashtbl.create 16 in
  let emit ?label ~src ~dst ~compute ~bits deps =
    let p = App_builder.packet b ?label ~src ~dst ~compute ~bits () in
    App_builder.depend_all b ~on:deps p;
    (match Hashtbl.find_opt last_of src with
    | Some prev -> App_builder.depend b ~on:prev p
    | None -> ());
    Hashtbl.replace last_of src p;
    p
  in
  for frame = 1 to frames do
    let tag stage = Printf.sprintf "%s-f%d" stage frame in
    let capture =
      emit ~label:(tag "capture") ~src:cam ~dst:pre ~compute:(stage_compute / 2)
        ~bits:frame_bits []
    in
    let cleaned =
      emit ~label:(tag "cleaned") ~src:pre ~dst:seg ~compute:stage_compute
        ~bits:frame_bits [ capture ]
    in
    let regions =
      List.init extractors (fun i ->
          emit
            ~label:(Printf.sprintf "region%d-f%d" (i + 1) frame)
            ~src:seg ~dst:(fe i) ~compute:stage_compute ~bits:region_bits
            [ cleaned ])
    in
    let descriptors =
      List.mapi
        (fun i region ->
          emit
            ~label:(Printf.sprintf "desc%d-f%d" (i + 1) frame)
            ~src:(fe i) ~dst:cls ~compute:stage_compute ~bits:descriptor_bits
            [ region ])
        regions
    in
    ignore
      (emit ~label:(tag "verdict") ~src:cls ~dst:sink ~compute:stage_compute
         ~bits:(descriptor_bits / 4) descriptors)
  done;
  App_builder.seal b
