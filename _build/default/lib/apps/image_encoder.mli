(** Block-based image encoder (the paper's second image application):
    a JPEG-style chain source -> DCT -> quantizer -> run-length coder ->
    entropy coder -> store, streaming one macroblock at a time.

    Data volumes shrink along the chain (transform coefficients compress
    well), and every stage is serialized on its core, producing a deep
    pipeline with uneven link loads. *)

val make :
  ?blocks:int ->
  ?block_bits:int ->
  ?stage_compute:int ->
  unit ->
  Nocmap_model.Cdcg.t
(** Defaults: 6 macroblocks of 512 bits, 24-cycle stages.  Cores:
    [src, dct, quant, rle, huff, store].
    @raise Invalid_argument for non-positive parameters. *)
