let all =
  [
    ("romberg", Romberg.make ());
    ("romberg-wide", Romberg.make ~workers:8 ~rounds:3 ());
    ("fft8", Fft.make ());
    ("fft16", Fft.make ~points:16 ());
    ("objrec", Object_recognition.make ());
    ("objrec-deep", Object_recognition.make ~frames:8 ~extractors:5 ());
    ("imgenc", Image_encoder.make ());
    ("imgenc-long", Image_encoder.make ~blocks:12 ~block_bits:1024 ());
  ]

let find name = List.assoc_opt name all
