(** N-point iterative Cooley-Tukey FFT mapped on butterfly units (the
    paper's 8-point FFT embedded application; other power-of-two sizes
    are variations).

    A source core scatters the samples over [n/2] butterfly units; each
    of the [log2 n] stages computes [n/2] butterflies, and intermediate
    values travel between the units that produce and consume them (no
    packet when producer and consumer coincide).  A sink core gathers
    the spectrum.  The stage-to-stage shuffles create the all-to-all
    communication bursts that make contention visible. *)

val make :
  ?points:int ->
  ?sample_bits:int ->
  ?butterfly_compute:int ->
  unit ->
  Nocmap_model.Cdcg.t
(** Defaults: 8 points, 32-bit complex samples (pairs travel as 64-bit
    packets), 12-cycle butterflies.  Cores: [src, u0 .. u(n/2-1), sink]
    — 6 cores for the paper's 8-point instance.
    @raise Invalid_argument unless [points] is a power of two >= 4. *)
