(** Small imperative helper for describing application CDCGs by hand:
    declare cores, emit packets (each returning its index), and add
    dependences; then seal the result into a validated CDCG. *)

type t

val create : name:string -> core_names:string list -> t

val core : t -> string -> int
(** Index of a declared core.  @raise Invalid_argument when unknown. *)

val packet :
  t -> ?label:string -> src:int -> dst:int -> compute:int -> bits:int -> unit -> int
(** Emits a packet and returns its index; the default label is
    [p<index>]. *)

val depend : t -> on:int -> int -> unit
(** [depend builder ~on:p q]: packet [q] waits for packet [p]. *)

val depend_all : t -> on:int list -> int -> unit

val serialize : t -> int list -> unit
(** Chains the packets in order: each depends on the previous.  Used to
    model a core that can only produce one packet at a time. *)

val seal : t -> Nocmap_model.Cdcg.t
(** Validates and returns the CDCG.
    @raise Invalid_argument if the description is ill-formed. *)
