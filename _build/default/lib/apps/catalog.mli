(** The eight embedded applications of the paper's Section 5: the four
    base algorithms and one variation of each. *)

val all : (string * Nocmap_model.Cdcg.t) list
(** [(name, cdcg)] pairs:
    romberg / romberg-wide, fft8 / fft16, objrec / objrec-deep,
    imgenc / imgenc-long. *)

val find : string -> Nocmap_model.Cdcg.t option
