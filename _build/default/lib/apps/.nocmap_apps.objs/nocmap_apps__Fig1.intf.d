lib/apps/fig1.mli: Nocmap_model
