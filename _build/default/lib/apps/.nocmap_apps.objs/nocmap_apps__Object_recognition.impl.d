lib/apps/object_recognition.ml: App_builder Hashtbl List Printf
