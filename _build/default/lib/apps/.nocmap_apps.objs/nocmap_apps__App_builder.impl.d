lib/apps/app_builder.ml: Array List Nocmap_model Printf
