lib/apps/catalog.mli: Nocmap_model
