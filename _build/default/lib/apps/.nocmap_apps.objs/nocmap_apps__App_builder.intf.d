lib/apps/app_builder.mli: Nocmap_model
