lib/apps/romberg.ml: App_builder List Printf
