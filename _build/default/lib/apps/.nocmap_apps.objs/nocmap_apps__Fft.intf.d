lib/apps/fft.mli: Nocmap_model
