lib/apps/image_encoder.ml: App_builder Hashtbl List Option Printf
