lib/apps/image_encoder.mli: Nocmap_model
