lib/apps/romberg.mli: Nocmap_model
