lib/apps/fig1.ml: Nocmap_model
