lib/apps/object_recognition.mli: Nocmap_model
