lib/apps/catalog.ml: Fft Image_encoder List Object_recognition Romberg
