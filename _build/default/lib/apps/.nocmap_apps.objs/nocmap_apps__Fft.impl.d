lib/apps/fft.ml: App_builder Array Fun Hashtbl Int List Option Printf
