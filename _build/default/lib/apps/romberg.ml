let make ?(workers = 4) ?(rounds = 4) ?(interval_bits = 64) ?(result_bits = 96)
    ?(master_compute = 8) ?(worker_compute = 40) () =
  if workers < 1 then invalid_arg "Romberg.make: need at least one worker";
  if rounds < 1 then invalid_arg "Romberg.make: need at least one round";
  let names = "master" :: List.init workers (fun i -> Printf.sprintf "w%d" (i + 1)) in
  let b =
    App_builder.create
      ~name:(Printf.sprintf "romberg-w%d-r%d" workers rounds)
      ~core_names:names
  in
  let master = App_builder.core b "master" in
  let worker i = i + 1 in
  let previous_results = ref [] in
  for round = 1 to rounds do
    let sends =
      List.init workers (fun i ->
          let send =
            App_builder.packet b
              ~label:(Printf.sprintf "task-r%d-w%d" round (i + 1))
              ~src:master ~dst:(worker i) ~compute:master_compute
              ~bits:interval_bits ()
          in
          (* Extrapolation needs every estimate of the previous round. *)
          App_builder.depend_all b ~on:!previous_results send;
          send)
    in
    let results =
      List.mapi
        (fun i send ->
          let result =
            App_builder.packet b
              ~label:(Printf.sprintf "estimate-r%d-w%d" round (i + 1))
              ~src:(worker i) ~dst:master ~compute:worker_compute
              ~bits:result_bits ()
          in
          App_builder.depend b ~on:send result;
          result)
        sends
    in
    previous_results := results
  done;
  App_builder.seal b
