(** The paper's running example (Figures 1-5): four cores A, B, E, F on
    a 2x2 NoC exchanging six packets.

    Evaluated with {!Nocmap_energy.Noc_params.paper_example} and
    [ERbit = ELbit = 1 pJ/bit], [PstNoC = 0.1 pJ/ns], the two mappings
    below reproduce the published numbers: CWM sees 390 pJ for both,
    while CDCM distinguishes them (100 ns / 400 pJ vs 90 ns / 399 pJ). *)

val cdcg : Nocmap_model.Cdcg.t

val cwg : Nocmap_model.Cwg.t

val core_a : int
val core_b : int
val core_e : int
val core_f : int

val mapping_c : int array
(** Figure 1(c): tiles (0..3 row-major) host B, A, F, E. *)

val mapping_d : int array
(** Figure 1(d): tiles host B, E, F, A. *)
