module Cdcg = Nocmap_model.Cdcg
module Cwg = Nocmap_model.Cwg

let core_a = 0
let core_b = 1
let core_e = 2
let core_f = 3

let packet ~src ~dst ~compute ~bits ~label = { Cdcg.src; dst; compute; bits; label }

(* Packet indices, matching declaration order below. *)
let p_ab1 = 0
let p_ea1 = 1
let p_ea2 = 2
let p_af1 = 3
let p_bf1 = 4
let p_fb1 = 5

let cdcg =
  Cdcg.create_exn ~name:"fig1" ~core_names:[| "A"; "B"; "E"; "F" |]
    ~packets:
      [|
        packet ~src:core_a ~dst:core_b ~compute:6 ~bits:15 ~label:"pAB1";
        packet ~src:core_e ~dst:core_a ~compute:10 ~bits:20 ~label:"pEA1";
        packet ~src:core_e ~dst:core_a ~compute:20 ~bits:15 ~label:"pEA2";
        packet ~src:core_a ~dst:core_f ~compute:6 ~bits:15 ~label:"pAF1";
        packet ~src:core_b ~dst:core_f ~compute:10 ~bits:40 ~label:"pBF1";
        packet ~src:core_f ~dst:core_b ~compute:6 ~bits:15 ~label:"pFB1";
      |]
    ~deps:
      [ (p_ea1, p_ea2); (p_ab1, p_af1); (p_ea1, p_af1); (p_af1, p_fb1); (p_bf1, p_fb1) ]

let cwg = Cwg.of_cdcg cdcg

(* placement.(core) = tile; cores are [A; B; E; F]. *)
let mapping_c = [| 1; 0; 3; 2 |]

let mapping_d = [| 3; 0; 1; 2 |]
