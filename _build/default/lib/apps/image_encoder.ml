let make ?(blocks = 6) ?(block_bits = 512) ?(stage_compute = 24) () =
  if blocks < 1 || block_bits < 16 || stage_compute < 1 then
    invalid_arg "Image_encoder.make: parameters must be positive (block_bits >= 16)";
  let names = [ "src"; "dct"; "quant"; "rle"; "huff"; "store" ] in
  let b =
    App_builder.create ~name:(Printf.sprintf "imgenc-b%d" blocks) ~core_names:names
  in
  let stage name = App_builder.core b name in
  let chain =
    [
      (stage "src", stage "dct", block_bits);
      (stage "dct", stage "quant", block_bits);
      (stage "quant", stage "rle", block_bits / 2);
      (stage "rle", stage "huff", block_bits / 4);
      (stage "huff", stage "store", block_bits / 8);
    ]
  in
  let last_of = Hashtbl.create 8 in
  for block = 1 to blocks do
    let previous = ref None in
    List.iteri
      (fun depth (src, dst, bits) ->
        let p =
          App_builder.packet b
            ~label:(Printf.sprintf "b%d-s%d" block depth)
            ~src ~dst ~compute:stage_compute ~bits ()
        in
        (match !previous with
        | Some prev -> App_builder.depend b ~on:prev p
        | None -> ());
        (match Hashtbl.find_opt last_of src with
        | Some prev when prev <> Option.value !previous ~default:(-1) ->
          App_builder.depend b ~on:prev p
        | Some _ | None -> ());
        Hashtbl.replace last_of src p;
        previous := Some p)
      chain
  done;
  App_builder.seal b
