(** Streaming object-recognition pipeline (the paper's first image
    application).

    Frames flow through camera -> preprocessing -> segmentation; the
    segmented regions fan out to parallel feature extractors whose
    descriptors are fused by a classifier that reports to a sink.  Each
    physical core is serialized (it processes one frame at a time), so
    successive frames pipeline — precisely the packet ordering
    information a CWM throws away. *)

val make :
  ?frames:int ->
  ?extractors:int ->
  ?frame_bits:int ->
  ?region_bits:int ->
  ?descriptor_bits:int ->
  ?stage_compute:int ->
  unit ->
  Nocmap_model.Cdcg.t
(** Defaults: 4 frames, 3 extractors, 4096-bit frames, 1024-bit
    regions, 256-bit descriptors, 30-cycle stages.  Cores:
    [cam, pre, seg, fe1..feN, cls, sink].
    @raise Invalid_argument for non-positive parameters. *)
