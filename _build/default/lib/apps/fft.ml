let is_power_of_two n = n >= 1 && n land (n - 1) = 0

let log2 n =
  let rec loop acc n = if n <= 1 then acc else loop (acc + 1) (n / 2) in
  loop 0 n

let dedup xs = List.sort_uniq Int.compare xs

(* Decimation-in-time pairing: at stage [s] (0-based), element [k] pairs
   with [k xor 2^s]; butterflies are identified by the low element of
   the pair.  Every packet that exports a value depends on the packets
   that delivered both inputs of the butterfly that produced it, so
   [producers.(k)] tracks that packet set and [holder.(k)] the unit the
   value lives on. *)
let make ?(points = 8) ?(sample_bits = 32) ?(butterfly_compute = 12) () =
  if not (is_power_of_two points) || points < 4 then
    invalid_arg "Fft.make: points must be a power of two >= 4";
  let units = points / 2 in
  let stages = log2 points in
  let names =
    ("src" :: List.init units (fun i -> Printf.sprintf "u%d" i)) @ [ "sink" ]
  in
  let b = App_builder.create ~name:(Printf.sprintf "fft%d" points) ~core_names:names in
  let src = App_builder.core b "src" in
  let sink = App_builder.core b "sink" in
  let unit i = 1 + i in
  let unit_of_butterfly b_index = unit (b_index mod units) in
  let producers = Array.make points [] in
  let holder = Array.make points src in
  let stage_lows stage =
    let span = 1 lsl stage in
    List.filter (fun k -> k land span = 0) (List.init points Fun.id)
  in
  (* Scatter: each stage-0 butterfly unit receives its sample pair. *)
  List.iteri
    (fun b_index low ->
      let u = unit_of_butterfly b_index in
      let p =
        App_builder.packet b
          ~label:(Printf.sprintf "scatter-b%d" b_index)
          ~src ~dst:u ~compute:4 ~bits:(2 * sample_bits) ()
      in
      producers.(low) <- [ p ];
      producers.(low lor 1) <- [ p ];
      holder.(low) <- u;
      holder.(low lor 1) <- u)
    (stage_lows 0);
  for stage = 0 to stages - 1 do
    let span = 1 lsl stage in
    let next_producers = Array.copy producers in
    let next_holder = Array.copy holder in
    List.iteri
      (fun b_index low ->
        let high = low lxor span in
        let u = unit_of_butterfly b_index in
        let fetch k =
          if holder.(k) = u then producers.(k)
          else begin
            let p =
              App_builder.packet b
                ~label:(Printf.sprintf "s%d-v%d" stage k)
                ~src:holder.(k) ~dst:u ~compute:butterfly_compute
                ~bits:sample_bits ()
            in
            App_builder.depend_all b ~on:(dedup producers.(k)) p;
            [ p ]
          end
        in
        let deps = dedup (fetch low @ fetch high) in
        next_producers.(low) <- deps;
        next_producers.(high) <- deps;
        next_holder.(low) <- u;
        next_holder.(high) <- u)
      (stage_lows stage);
    Array.blit next_producers 0 producers 0 points;
    Array.blit next_holder 0 holder 0 points
  done;
  (* Gather: every unit ships the spectrum values it ended up with. *)
  let by_holder = Hashtbl.create 8 in
  for k = points - 1 downto 0 do
    let existing = Option.value (Hashtbl.find_opt by_holder holder.(k)) ~default:[] in
    Hashtbl.replace by_holder holder.(k) (k :: existing)
  done;
  let holders = List.sort Int.compare (Hashtbl.fold (fun u _ acc -> u :: acc) by_holder []) in
  List.iter
    (fun u ->
      let ks = Hashtbl.find by_holder u in
      let p =
        App_builder.packet b
          ~label:(Printf.sprintf "gather-u%d" u)
          ~src:u ~dst:sink ~compute:butterfly_compute
          ~bits:(List.length ks * sample_bits)
          ()
      in
      App_builder.depend_all b ~on:(dedup (List.concat_map (fun k -> producers.(k)) ks)) p)
    holders;
  App_builder.seal b
