(** Distributed Romberg integration (one of the paper's four embedded
    applications).

    A master core subdivides the integration interval among worker
    cores; each round, every worker returns its trapezoid estimate, the
    master performs the Richardson extrapolation step (which needs all
    results of the round), and dispatches refined subintervals.  Each
    round therefore fully synchronizes on the master — exactly the
    dependence pattern CWM cannot see. *)

val make :
  ?workers:int ->
  ?rounds:int ->
  ?interval_bits:int ->
  ?result_bits:int ->
  ?master_compute:int ->
  ?worker_compute:int ->
  unit ->
  Nocmap_model.Cdcg.t
(** Defaults: 4 workers, 4 rounds, 64-bit interval descriptors, 96-bit
    results, 8-cycle master step, 40-cycle worker step.  Cores:
    [master, w1 .. wN].
    @raise Invalid_argument for fewer than 1 worker or round. *)
