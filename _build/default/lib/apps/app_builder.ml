module Cdcg = Nocmap_model.Cdcg

type t = {
  name : string;
  core_names : string array;
  mutable packets : Cdcg.packet list; (* reversed *)
  mutable count : int;
  mutable deps : (int * int) list;
}

let create ~name ~core_names =
  { name; core_names = Array.of_list core_names; packets = []; count = 0; deps = [] }

let core t name =
  let rec scan i =
    if i >= Array.length t.core_names then
      invalid_arg ("App_builder.core: unknown core " ^ name)
    else if t.core_names.(i) = name then i
    else scan (i + 1)
  in
  scan 0

let packet t ?label ~src ~dst ~compute ~bits () =
  let index = t.count in
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "p%d" index
  in
  t.packets <- { Cdcg.src; dst; compute; bits; label } :: t.packets;
  t.count <- index + 1;
  index

let depend t ~on q = t.deps <- (on, q) :: t.deps

let depend_all t ~on q = List.iter (fun p -> depend t ~on:p q) on

let rec serialize t = function
  | [] | [ _ ] -> ()
  | a :: (b :: _ as rest) ->
    depend t ~on:a b;
    serialize t rest

let seal t =
  Cdcg.create_exn ~name:t.name ~core_names:t.core_names
    ~packets:(Array.of_list (List.rev t.packets))
    ~deps:(List.rev t.deps)
