let search ~objective ~tiles ~initial ?(max_evaluations = 100_000) () =
  (match Placement.validate ~tiles initial with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Local_search.search: " ^ msg));
  let evals = ref 0 in
  let cost_of p =
    incr evals;
    objective.Objective.cost_fn p
  in
  let cores = Array.length initial in
  let current = ref (Array.copy initial) in
  let current_cost = ref (cost_of !current) in
  (* One pass: the best strictly-improving move among all core->tile
     relocations (swapping with the occupant when taken). *)
  let best_move () =
    let best = ref None in
    for core = 0 to cores - 1 do
      for tile = 0 to tiles - 1 do
        if tile <> !current.(core) && !evals < max_evaluations then begin
          let candidate = Placement.move_to_tile !current ~core ~tile in
          let cost = cost_of candidate in
          match !best with
          | Some (_, best_cost) when best_cost <= cost -> ()
          | Some _ | None -> if cost < !current_cost then best := Some (candidate, cost)
        end
      done
    done;
    !best
  in
  let rec descend () =
    if !evals < max_evaluations then begin
      match best_move () with
      | None -> ()
      | Some (placement, cost) ->
        current := placement;
        current_cost := cost;
        descend ()
    end
  in
  descend ();
  { Objective.placement = !current; cost = !current_cost; evaluations = !evals }
