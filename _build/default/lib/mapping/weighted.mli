(** Weighted energy/time objective for Pareto exploration.

    The paper optimizes either dynamic energy (CWM) or total energy
    (CDCM, where timing enters through the static term).  This extension
    exposes the trade-off directly: the cost is

    [alpha * ENoC / e0  +  (1 - alpha) * texec / t0]

    with [e0]/[t0] normalization constants (typically the evaluation of
    a reference placement) so the two terms are commensurable.
    [alpha = 1] is a pure-energy objective; [alpha = 0] pure time. *)

val make :
  tech:Nocmap_energy.Technology.t ->
  params:Nocmap_energy.Noc_params.t ->
  crg:Nocmap_noc.Crg.t ->
  cdcg:Nocmap_model.Cdcg.t ->
  alpha:float ->
  reference:Placement.t ->
  Objective.t
(** @raise Invalid_argument unless [alpha] lies in [\[0, 1\]] or when
    the reference placement is invalid. *)

val pareto_sweep :
  rng:Nocmap_util.Rng.t ->
  config:Annealing.config ->
  tech:Nocmap_energy.Technology.t ->
  params:Nocmap_energy.Noc_params.t ->
  crg:Nocmap_noc.Crg.t ->
  cdcg:Nocmap_model.Cdcg.t ->
  alphas:float list ->
  (float * Cost_cdcm.evaluation) list
(** One annealing run per weight; returns [(alpha, evaluation)] pairs
    for the best placement of each run (all evaluated under the full
    CDCM model). *)
