module Crg = Nocmap_noc.Crg
module Cdcg = Nocmap_model.Cdcg
module Equations = Nocmap_energy.Equations
module Wormhole = Nocmap_sim.Wormhole
module Trace = Nocmap_sim.Trace

type evaluation = {
  dynamic : float;
  static_ : float;
  total : float;
  texec_ns : float;
  texec_cycles : int;
  contention_cycles : int;
}

let dynamic_energy ~tech ~crg ~cdcg placement =
  (match Placement.validate ~tiles:(Crg.tile_count crg) placement with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cost_cdcm: " ^ msg));
  let packet acc (p : Cdcg.packet) =
    let routers =
      Crg.router_count_on_path crg ~src:placement.(p.Cdcg.src)
        ~dst:placement.(p.Cdcg.dst)
    in
    acc +. Equations.communication_energy tech ~routers ~bits:p.Cdcg.bits
  in
  Array.fold_left packet 0.0 cdcg.Cdcg.packets

let evaluate ~tech ~params ~crg ~cdcg placement =
  let trace = Wormhole.run ~trace:false ~params ~crg ~placement cdcg in
  let dynamic = dynamic_energy ~tech ~crg ~cdcg placement in
  let texec_ns = trace.Trace.texec_ns in
  let static_ =
    Equations.static_energy tech ~tiles:(Crg.tile_count crg) ~texec_ns
  in
  {
    dynamic;
    static_;
    total = Equations.total_energy ~dynamic ~static_;
    texec_ns;
    texec_cycles = trace.Trace.texec_cycles;
    contention_cycles = trace.Trace.contention_cycles;
  }

let total_energy ~tech ~params ~crg ~cdcg placement =
  (evaluate ~tech ~params ~crg ~cdcg placement).total

let pp_evaluation ppf e =
  Format.fprintf ppf
    "ENoC=%.4g J (dyn %.4g + st %.4g), texec=%.4g ns, contention=%d cycles"
    e.total e.dynamic e.static_ e.texec_ns e.contention_cycles
