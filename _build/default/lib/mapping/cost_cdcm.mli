(** The CDCM objective function (Equation 10).

    Evaluating a placement executes the CDCG on the CRG with the
    wormhole simulator, yielding the execution time (and thus static
    energy, Equation 9) on top of the dynamic energy of every packet
    (Equation 4).  This is the full cost the paper's CDCM algorithm
    minimizes. *)

type evaluation = {
  dynamic : float;        (** [EDyNoC(CDCM)], Joules (Equation 4). *)
  static_ : float;        (** [EStNoC], Joules (Equation 9). *)
  total : float;          (** [ENoC], Joules (Equation 10). *)
  texec_ns : float;       (** Application execution time. *)
  texec_cycles : int;
  contention_cycles : int;
}

val evaluate :
  tech:Nocmap_energy.Technology.t ->
  params:Nocmap_energy.Noc_params.t ->
  crg:Nocmap_noc.Crg.t ->
  cdcg:Nocmap_model.Cdcg.t ->
  Placement.t ->
  evaluation
(** Full evaluation (simulation with tracing disabled).
    @raise Invalid_argument on an invalid placement. *)

val dynamic_energy :
  tech:Nocmap_energy.Technology.t ->
  crg:Nocmap_noc.Crg.t ->
  cdcg:Nocmap_model.Cdcg.t ->
  Placement.t ->
  float
(** Equation (4) alone — no simulation needed, since dynamic energy
    only depends on bit traffic and path lengths.  Coincides with the
    CWM value on the projected CWG. *)

val total_energy :
  tech:Nocmap_energy.Technology.t ->
  params:Nocmap_energy.Noc_params.t ->
  crg:Nocmap_noc.Crg.t ->
  cdcg:Nocmap_model.Cdcg.t ->
  Placement.t ->
  float
(** [ENoC] shortcut used as the annealing cost. *)

val pp_evaluation : Format.formatter -> evaluation -> unit
