(** Plain-text persistence for placements, so a mapping found by
    [nocmap map] can be re-evaluated or visualized later:

    {v
    # nocmap placement
    noc 3x3
    core A tile 4
    core B tile 1
    v} *)

val to_string : mesh:Nocmap_noc.Mesh.t -> core_names:string array -> Placement.t -> string

val of_string :
  core_names:string array -> string -> (Nocmap_noc.Mesh.t * Placement.t, string) result
(** Parses and validates (mesh fit, injectivity, every declared core
    placed exactly once).  Errors carry a [line N:] prefix. *)

val save :
  path:string ->
  mesh:Nocmap_noc.Mesh.t ->
  core_names:string array ->
  Placement.t ->
  unit

val load :
  path:string ->
  core_names:string array ->
  (Nocmap_noc.Mesh.t * Placement.t, string) result
