module Crg = Nocmap_noc.Crg
module Link = Nocmap_noc.Link
module Mesh = Nocmap_noc.Mesh
module Cwg = Nocmap_model.Cwg
module Equations = Nocmap_energy.Equations

let check ~crg placement =
  match Placement.validate ~tiles:(Crg.tile_count crg) placement with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cost_cwm: " ^ msg)

let dynamic_energy ~tech ~crg ~cwg placement =
  check ~crg placement;
  let comm acc (src, dst, bits) =
    let routers =
      Crg.router_count_on_path crg ~src:placement.(src) ~dst:placement.(dst)
    in
    acc +. Equations.communication_energy tech ~routers ~bits
  in
  List.fold_left comm 0.0 (Cwg.communications cwg)

let cost_table ~tech ~crg ~cwg placement =
  check ~crg placement;
  let mesh = Crg.mesh crg in
  let routers = Array.make (Mesh.tile_count mesh) 0.0 in
  let links = Array.make (Link.slot_count mesh) 0.0 in
  let er = tech.Nocmap_energy.Technology.e_rbit in
  let el = tech.Nocmap_energy.Technology.e_lbit in
  let comm (src, dst, bits) =
    let path = Crg.path crg ~src:placement.(src) ~dst:placement.(dst) in
    let w = float_of_int bits in
    Array.iter (fun tile -> routers.(tile) <- routers.(tile) +. (w *. er)) path.Crg.routers;
    Array.iter (fun lid -> links.(lid) <- links.(lid) +. (w *. el)) path.Crg.links
  in
  List.iter comm (Cwg.communications cwg);
  (routers, links)

let bit_hops ~crg ~cwg placement =
  check ~crg placement;
  let comm acc (src, dst, bits) =
    let routers =
      Crg.router_count_on_path crg ~src:placement.(src) ~dst:placement.(dst)
    in
    acc + (bits * routers)
  in
  List.fold_left comm 0 (Cwg.communications cwg)
