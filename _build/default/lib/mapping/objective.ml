type t = {
  name : string;
  cost_fn : Placement.t -> float;
}

type search_result = {
  placement : Placement.t;
  cost : float;
  evaluations : int;
}

let cwm ~tech ~crg ~cwg =
  { name = "cwm"; cost_fn = (fun p -> Cost_cwm.dynamic_energy ~tech ~crg ~cwg p) }

let cdcm ~tech ~params ~crg ~cdcg =
  {
    name = "cdcm";
    cost_fn = (fun p -> Cost_cdcm.total_energy ~tech ~params ~crg ~cdcg p);
  }

let texec ~params ~crg ~cdcg =
  {
    name = "texec";
    cost_fn =
      (fun placement ->
        float_of_int (Nocmap_sim.Wormhole.texec_cycles ~params ~crg ~placement cdcg));
  }
