module Rng = Nocmap_util.Rng

type t = int array

let validate ~tiles placement =
  let cores = Array.length placement in
  if cores > tiles then Error "more cores than tiles"
  else begin
    let used = Array.make tiles false in
    let rec scan core =
      if core >= cores then Ok ()
      else
        let tile = placement.(core) in
        if tile < 0 || tile >= tiles then
          Error (Printf.sprintf "core %d placed on out-of-range tile %d" core tile)
        else if used.(tile) then
          Error (Printf.sprintf "tile %d hosts more than one core" tile)
        else begin
          used.(tile) <- true;
          scan (core + 1)
        end
    in
    scan 0
  end

let is_valid ~tiles placement = Result.is_ok (validate ~tiles placement)

let random rng ~cores ~tiles =
  if cores > tiles then invalid_arg "Placement.random: more cores than tiles";
  let tiles_arr = Array.init tiles Fun.id in
  Rng.sample_without_replacement rng cores tiles_arr

let identity ~cores = Array.init cores Fun.id

let swap_cores placement a b =
  let p = Array.copy placement in
  p.(a) <- placement.(b);
  p.(b) <- placement.(a);
  p

let occupant placement ~tiles =
  let inv = Array.make tiles None in
  Array.iteri (fun core tile -> inv.(tile) <- Some core) placement;
  inv

let move_to_tile placement ~core ~tile =
  let p = Array.copy placement in
  let previous = placement.(core) in
  (match Array.find_index (fun t -> t = tile) placement with
  | Some other -> p.(other) <- previous
  | None -> ());
  p.(core) <- tile;
  p

let random_neighbor rng ~tiles placement =
  if tiles < 2 then invalid_arg "Placement.random_neighbor: need at least two tiles";
  let cores = Array.length placement in
  let core = Rng.int rng cores in
  let rec fresh_tile () =
    let tile = Rng.int rng tiles in
    if tile = placement.(core) then fresh_tile () else tile
  in
  move_to_tile placement ~core ~tile:(fresh_tile ())

let to_string ~core_names placement =
  String.concat " "
    (List.mapi
       (fun core tile -> Printf.sprintf "%s@%d" core_names.(core) tile)
       (Array.to_list placement))
