(** The CWM objective function (Equation 3).

    For a placement, every communication [a -> b] of the CWG is routed
    on the CRG; its [w_ab] bits charge [ERbit] at each of the [K]
    routers and [ELbit] on each of the [K-1] links.  The total is the
    NoC dynamic energy [EDyNoC], the only quantity CWM can optimize —
    it carries no timing, so it cannot see contention or static
    energy. *)

val dynamic_energy :
  tech:Nocmap_energy.Technology.t ->
  crg:Nocmap_noc.Crg.t ->
  cwg:Nocmap_model.Cwg.t ->
  Placement.t ->
  float
(** [EDyNoC] in Joules.  @raise Invalid_argument on an invalid
    placement. *)

val cost_table :
  tech:Nocmap_energy.Technology.t ->
  crg:Nocmap_noc.Crg.t ->
  cwg:Nocmap_model.Cwg.t ->
  Placement.t ->
  float array * float array
(** Per-router and per-link-slot energy cost variables (the Figure 2
    annotations); their sum equals {!dynamic_energy}. *)

val bit_hops :
  crg:Nocmap_noc.Crg.t -> cwg:Nocmap_model.Cwg.t -> Placement.t -> int
(** Technology-independent traffic metric: total [bits * routers]
    traversed.  Monotone in {!dynamic_energy} only for fixed router/link
    ratios; exposed for diagnostics and tests. *)
