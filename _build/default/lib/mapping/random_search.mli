(** Random-mapping baseline: the best of [samples] uniformly random
    placements.  Hu & Marculescu's comparison point — mapping algorithms
    are reported against random solutions — and a sanity floor for every
    search in this library. *)

val search :
  rng:Nocmap_util.Rng.t ->
  objective:Objective.t ->
  cores:int ->
  tiles:int ->
  samples:int ->
  Objective.search_result
(** @raise Invalid_argument when [samples < 1] or [cores > tiles]. *)
