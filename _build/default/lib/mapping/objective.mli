(** Mapping objectives and the common search-result record.

    A search algorithm only sees a black-box cost over placements; this
    module builds the two costs the paper compares (plus a pure
    execution-time objective used in ablations) and names them for
    reports. *)

type t = {
  name : string;
  cost_fn : Placement.t -> float;
}

type search_result = {
  placement : Placement.t;
  cost : float;        (** Cost of [placement] under the searched objective. *)
  evaluations : int;   (** Number of cost-function calls. *)
}

val cwm :
  tech:Nocmap_energy.Technology.t ->
  crg:Nocmap_noc.Crg.t ->
  cwg:Nocmap_model.Cwg.t ->
  t
(** Equation (3): dynamic energy only. *)

val cdcm :
  tech:Nocmap_energy.Technology.t ->
  params:Nocmap_energy.Noc_params.t ->
  crg:Nocmap_noc.Crg.t ->
  cdcg:Nocmap_model.Cdcg.t ->
  t
(** Equation (10): static + dynamic energy via simulation. *)

val texec :
  params:Nocmap_energy.Noc_params.t ->
  crg:Nocmap_noc.Crg.t ->
  cdcg:Nocmap_model.Cdcg.t ->
  t
(** Execution time in cycles (ablation: timing-only CDCM variant). *)
