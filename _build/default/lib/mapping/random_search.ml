let search ~rng ~objective ~cores ~tiles ~samples =
  if samples < 1 then invalid_arg "Random_search.search: need at least one sample";
  if cores > tiles then invalid_arg "Random_search.search: more cores than tiles";
  let rec loop i best =
    if i >= samples then best
    else begin
      let placement = Placement.random rng ~cores ~tiles in
      let cost = objective.Objective.cost_fn placement in
      let best =
        match best with
        | Some (_, best_cost) when best_cost <= cost -> best
        | Some _ | None -> Some (placement, cost)
      in
      loop (i + 1) best
    end
  in
  match loop 0 None with
  | Some (placement, cost) -> { Objective.placement; cost; evaluations = samples }
  | None -> assert false
