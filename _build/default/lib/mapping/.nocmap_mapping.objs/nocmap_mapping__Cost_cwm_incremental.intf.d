lib/mapping/cost_cwm_incremental.mli: Nocmap_energy Nocmap_model Nocmap_noc Placement
