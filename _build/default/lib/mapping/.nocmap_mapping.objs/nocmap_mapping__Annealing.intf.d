lib/mapping/annealing.mli: Nocmap_util Objective Placement
