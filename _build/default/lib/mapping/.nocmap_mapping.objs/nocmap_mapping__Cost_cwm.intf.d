lib/mapping/cost_cwm.mli: Nocmap_energy Nocmap_model Nocmap_noc Placement
