lib/mapping/exhaustive.ml: Array Objective Printf
