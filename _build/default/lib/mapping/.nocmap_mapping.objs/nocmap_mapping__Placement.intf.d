lib/mapping/placement.mli: Nocmap_util
