lib/mapping/objective.ml: Cost_cdcm Cost_cwm Nocmap_sim Placement
