lib/mapping/objective.mli: Nocmap_energy Nocmap_model Nocmap_noc Placement
