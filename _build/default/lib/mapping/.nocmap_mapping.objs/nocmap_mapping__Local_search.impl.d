lib/mapping/local_search.ml: Array Objective Placement
