lib/mapping/random_search.mli: Nocmap_util Objective
