lib/mapping/placement_io.mli: Nocmap_noc Placement
