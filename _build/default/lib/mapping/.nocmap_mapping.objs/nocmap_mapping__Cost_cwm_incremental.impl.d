lib/mapping/cost_cwm_incremental.ml: Array Cost_cwm List Nocmap_energy Nocmap_model Nocmap_noc Placement
