lib/mapping/cost_cwm.ml: Array List Nocmap_energy Nocmap_model Nocmap_noc Placement
