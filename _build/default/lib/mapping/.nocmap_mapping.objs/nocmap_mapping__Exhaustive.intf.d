lib/mapping/exhaustive.mli: Objective
