lib/mapping/random_search.ml: Objective Placement
