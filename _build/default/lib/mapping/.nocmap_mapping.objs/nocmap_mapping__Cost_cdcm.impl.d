lib/mapping/cost_cdcm.ml: Array Format Nocmap_energy Nocmap_model Nocmap_noc Nocmap_sim Placement
