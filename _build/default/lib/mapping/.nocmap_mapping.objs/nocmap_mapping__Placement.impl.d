lib/mapping/placement.ml: Array Fun List Nocmap_util Printf Result String
