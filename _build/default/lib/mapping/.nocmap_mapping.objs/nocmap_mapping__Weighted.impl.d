lib/mapping/weighted.ml: Annealing Cost_cdcm Float List Nocmap_model Nocmap_noc Nocmap_util Objective Placement Printf
