lib/mapping/greedy.mli: Nocmap_energy Nocmap_model Nocmap_noc Objective
