lib/mapping/annealing.ml: Array Nocmap_util Objective Placement
