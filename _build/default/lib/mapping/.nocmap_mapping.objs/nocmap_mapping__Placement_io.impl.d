lib/mapping/placement_io.ml: Array Buffer Fun List Nocmap_noc Placement Printf Result String
