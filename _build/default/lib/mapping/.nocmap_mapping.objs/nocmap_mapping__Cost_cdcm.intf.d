lib/mapping/cost_cdcm.mli: Format Nocmap_energy Nocmap_model Nocmap_noc Placement
