lib/mapping/local_search.mli: Objective Placement
