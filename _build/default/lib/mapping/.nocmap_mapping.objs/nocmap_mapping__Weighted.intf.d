lib/mapping/weighted.mli: Annealing Cost_cdcm Nocmap_energy Nocmap_model Nocmap_noc Nocmap_util Objective Placement
