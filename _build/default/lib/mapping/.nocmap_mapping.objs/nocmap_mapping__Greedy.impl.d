lib/mapping/greedy.ml: Array Cost_cwm Fun Int List Nocmap_energy Nocmap_model Nocmap_noc Objective
