(** Core-to-tile placements.

    A placement is the mapping function of Section 3: an injective
    assignment [placement.(core) = tile].  The module provides the move
    primitives shared by every search algorithm. *)

type t = int array

val validate : tiles:int -> t -> (unit, string) result
(** Checks range and injectivity. *)

val is_valid : tiles:int -> t -> bool

val random : Nocmap_util.Rng.t -> cores:int -> tiles:int -> t
(** Uniformly random injective placement.
    @raise Invalid_argument when [cores > tiles]. *)

val identity : cores:int -> t
(** Core [i] on tile [i]. *)

val swap_cores : t -> int -> int -> t
(** New placement with the tiles of two cores exchanged. *)

val move_to_tile : t -> core:int -> tile:int -> t
(** New placement with [core] on [tile]; if another core occupied
    [tile], that core takes the vacated tile (so injectivity is
    preserved whether or not [tile] was free). *)

val random_neighbor : Nocmap_util.Rng.t -> tiles:int -> t -> t
(** One annealing move: a random core hops to a random different tile
    (swapping with its occupant when the tile is taken).
    @raise Invalid_argument when [tiles < 2]. *)

val occupant : t -> tiles:int -> int option array
(** Inverse view: [occupant.(tile)] is the core placed there, if any. *)

val to_string : core_names:string array -> t -> string
(** e.g. ["A@2 B@0 E@1 F@3"]. *)
