(* Scaling study: ETR and ECS as the NoC grows (the trend the paper
   notes at the end of Section 5), on generated benchmarks with a fixed
   per-tile workload density.

   Run with:  dune exec examples/scaling_study.exe *)

module Mesh = Nocmap_noc.Mesh
module Rng = Nocmap_util.Rng
module Generator = Nocmap_tgff.Generator
module Experiment = Nocmap.Experiment
module Tablefmt = Nocmap_util.Tablefmt

let () =
  let rng = Rng.create ~seed:99 in
  let table =
    Tablefmt.create ~title:"Scaling study: CDCM vs CWM as the NoC grows"
      ~columns:
        [
          ("NoC", Tablefmt.Left);
          ("cores", Tablefmt.Right);
          ("packets", Tablefmt.Right);
          ("ETR", Tablefmt.Right);
          ("ECS 0.35u", Tablefmt.Right);
          ("ECS 0.07u", Tablefmt.Right);
        ]
      ()
  in
  let config = { Experiment.default_config with Experiment.restarts = 1 } in
  let study mesh_str =
    let mesh = Mesh.of_string mesh_str in
    let tiles = Mesh.tile_count mesh in
    let cores = max 4 (tiles - 1) in
    let packets = 6 * cores in
    let spec =
      Generator.default_spec
        ~name:(Printf.sprintf "scale-%s" mesh_str)
        ~cores ~packets ~total_bits:(packets * 1500)
    in
    let cdcg = Generator.generate (Rng.split rng) spec in
    let outcome = Experiment.compare_models ~rng:(Rng.split rng) ~config ~mesh cdcg in
    Tablefmt.add_row table
      [
        mesh_str;
        string_of_int cores;
        string_of_int packets;
        Printf.sprintf "%.1f %%" outcome.Experiment.etr_percent;
        Printf.sprintf "%.2f %%" outcome.Experiment.ecs_low_percent;
        Printf.sprintf "%.1f %%" outcome.Experiment.ecs_high_percent;
      ]
  in
  List.iter study [ "2x2"; "3x2"; "3x3"; "4x3"; "4x4"; "5x4" ];
  Tablefmt.print table
