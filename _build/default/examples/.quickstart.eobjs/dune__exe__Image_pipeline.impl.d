examples/image_pipeline.ml: List Nocmap_apps Nocmap_energy Nocmap_mapping Nocmap_model Nocmap_noc Nocmap_util Printf
