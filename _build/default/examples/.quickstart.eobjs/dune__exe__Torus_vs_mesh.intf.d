examples/torus_vs_mesh.mli:
