examples/torus_vs_mesh.ml: List Nocmap_energy Nocmap_mapping Nocmap_model Nocmap_noc Nocmap_tgff Nocmap_util Printf
