examples/fft_mapping.mli:
