examples/scaling_study.ml: List Nocmap Nocmap_noc Nocmap_tgff Nocmap_util Printf
