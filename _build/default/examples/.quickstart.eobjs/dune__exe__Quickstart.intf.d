examples/quickstart.mli:
