module Mesh = Nocmap_noc.Mesh
module Routing = Nocmap_noc.Routing
module Link = Nocmap_noc.Link
module Crg = Nocmap_noc.Crg
module Noc_params = Nocmap_energy.Noc_params
module Wormhole = Nocmap_sim.Wormhole
module Trace = Nocmap_sim.Trace
module Cdcg = Nocmap_model.Cdcg

let mesh = Mesh.create ~cols:4 ~rows:3

let test_wrap_links_exist () =
  (* Every tile of a torus has all four outgoing links. *)
  Alcotest.(check int) "4 links per tile" (4 * 12) (List.length (Link.all ~wrap:true mesh));
  let src, dst = Link.endpoints ~wrap:true mesh (Link.id ~wrap:true mesh ~src:3 ~dst:0) in
  Alcotest.(check (pair int int)) "east wrap from the right edge" (3, 0) (src, dst)

let test_wrap_requires_large_dims () =
  let small = Mesh.create ~cols:2 ~rows:3 in
  Alcotest.(check bool) "2-wide torus rejected" true
    (match Link.all ~wrap:true small with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_torus_route_takes_short_way () =
  (* 0 (0,0) -> 3 (3,0): 3 mesh hops east, 1 torus hop west. *)
  Alcotest.(check (list int)) "mesh goes the long way" [ 0; 1; 2; 3 ]
    (Routing.router_path mesh Routing.Xy ~src:0 ~dst:3);
  Alcotest.(check (list int)) "torus wraps west" [ 0; 3 ]
    (Routing.router_path mesh Routing.Torus_xy ~src:0 ~dst:3)

let test_torus_tie_goes_forward () =
  (* 4x3: x distance 2 both ways from column 0 to column 2: forward. *)
  Alcotest.(check (list int)) "tie broken east" [ 0; 1; 2 ]
    (Routing.router_path mesh Routing.Torus_xy ~src:0 ~dst:2)

let test_torus_never_longer_than_mesh () =
  let tiles = Mesh.tile_count mesh in
  for src = 0 to tiles - 1 do
    for dst = 0 to tiles - 1 do
      let mesh_hops = Routing.hop_count mesh Routing.Xy ~src ~dst in
      let torus_hops = Routing.hop_count mesh Routing.Torus_xy ~src ~dst in
      Alcotest.(check bool)
        (Printf.sprintf "%d->%d" src dst)
        true (torus_hops <= mesh_hops)
    done
  done

let test_torus_yx () =
  (* 0 (0,0) -> 8 (0,2) on 3 rows: 2 hops south or 1 hop north (wrap). *)
  Alcotest.(check (list int)) "yx wraps north" [ 0; 8 ]
    (Routing.router_path mesh Routing.Torus_yx ~src:0 ~dst:8)

let test_torus_crg_simulation () =
  (* A packet between opposite corners is delivered faster on the torus. *)
  let cdcg =
    Cdcg.create_exn ~name:"corner" ~core_names:[| "a"; "b" |]
      ~packets:[| { Cdcg.src = 0; dst = 1; compute = 0; bits = 8; label = "p" } |]
      ~deps:[]
  in
  let placement = [| 0; 11 |] in
  let params = Noc_params.paper_example in
  let texec routing =
    (Wormhole.run ~params ~crg:(Crg.create ~routing mesh) ~placement cdcg)
      .Trace.texec_cycles
  in
  (* mesh: K = 6 routers -> 6*3 + 8 = 26; torus wraps west then north:
     0 -> 3 -> 11, K = 3 -> 3*3 + 8 = 17. *)
  Alcotest.(check int) "mesh" 26 (texec Routing.Xy);
  Alcotest.(check int) "torus" 17 (texec Routing.Torus_xy)

let test_torus_digraph_degree () =
  let g = Crg.to_digraph (Crg.create ~routing:Routing.Torus_xy mesh) in
  for tile = 0 to 11 do
    Alcotest.(check int) "out degree 4" 4 (Nocmap_graph.Digraph.out_degree g tile)
  done

let test_algorithm_strings () =
  Alcotest.(check bool) "parse torus-xy" true
    (Routing.algorithm_of_string "Torus-XY" = Routing.Torus_xy);
  Alcotest.(check string) "print" "torus-yx"
    (Routing.algorithm_to_string Routing.Torus_yx);
  Alcotest.(check bool) "wrap flag" true (Routing.uses_wrap_links Routing.Torus_xy);
  Alcotest.(check bool) "no wrap for xy" false (Routing.uses_wrap_links Routing.Xy)

let suite =
  ( "torus",
    [
      Alcotest.test_case "wrap links exist" `Quick test_wrap_links_exist;
      Alcotest.test_case "wrap needs dims >= 3" `Quick test_wrap_requires_large_dims;
      Alcotest.test_case "short way around" `Quick test_torus_route_takes_short_way;
      Alcotest.test_case "tie goes forward" `Quick test_torus_tie_goes_forward;
      Alcotest.test_case "never longer than mesh" `Quick test_torus_never_longer_than_mesh;
      Alcotest.test_case "torus yx" `Quick test_torus_yx;
      Alcotest.test_case "end-to-end simulation" `Quick test_torus_crg_simulation;
      Alcotest.test_case "digraph degree" `Quick test_torus_digraph_degree;
      Alcotest.test_case "algorithm strings" `Quick test_algorithm_strings;
    ] )
