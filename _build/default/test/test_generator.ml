module Generator = Nocmap_tgff.Generator
module Cdcg = Nocmap_model.Cdcg
module Cwg = Nocmap_model.Cwg
module Rng = Nocmap_util.Rng

let gen_params =
  QCheck2.Gen.(
    let* seed = int_range 0 100_000 in
    let* cores = int_range 2 20 in
    let* packets = int_range 1 80 in
    let* bits_per_packet = int_range 1 5_000 in
    return (seed, cores, packets, packets * bits_per_packet))

let generate (seed, cores, packets, total_bits) =
  let spec = Generator.default_spec ~name:"g" ~cores ~packets ~total_bits in
  Generator.generate (Rng.create ~seed) spec

let prop_statistics_exact =
  QCheck2.Test.make ~name:"generated stats match the spec exactly" ~count:200
    gen_params (fun ((_, cores, packets, total_bits) as p) ->
      let cdcg = generate p in
      Cdcg.core_count cdcg = cores
      && Cdcg.packet_count cdcg = packets
      && Cdcg.total_bits cdcg = total_bits)

let prop_every_core_communicates =
  QCheck2.Test.make ~name:"every core appears in some communication" ~count:100
    gen_params (fun ((_, cores, packets, _) as p) ->
      QCheck2.assume (packets >= 2 * cores);
      let cwg = Cwg.of_cdcg (generate p) in
      List.for_all
        (fun core ->
          List.exists
            (fun (s, d, _) -> s = core || d = core)
            (Cwg.communications cwg))
        (List.init cores Fun.id))

let prop_deterministic =
  QCheck2.Test.make ~name:"same seed, same benchmark" ~count:50 gen_params
    (fun ((seed, _, _, _) as p) ->
      ignore seed;
      let a = generate p and b = generate p in
      a.Cdcg.packets = b.Cdcg.packets && a.Cdcg.deps = b.Cdcg.deps)

let test_different_seeds_differ () =
  let spec = Generator.default_spec ~name:"g" ~cores:6 ~packets:30 ~total_bits:9_000 in
  let a = Generator.generate (Rng.create ~seed:1) spec in
  let b = Generator.generate (Rng.create ~seed:2) spec in
  Alcotest.(check bool) "structures differ" true (a.Cdcg.packets <> b.Cdcg.packets)

let test_spec_validation () =
  let base = Generator.default_spec ~name:"g" ~cores:4 ~packets:10 ~total_bits:100 in
  let rejects spec =
    match Generator.generate (Rng.create ~seed:1) spec with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "one core" true (rejects { base with Generator.cores = 1 });
  Alcotest.(check bool) "zero packets" true (rejects { base with Generator.packets = 0 });
  Alcotest.(check bool) "too few bits" true
    (rejects { base with Generator.total_bits = 5 });
  Alcotest.(check bool) "bad locality" true
    (rejects { base with Generator.locality = 1.5 });
  Alcotest.(check bool) "bad root fraction" true
    (rejects { base with Generator.root_fraction = -0.1 });
  Alcotest.(check bool) "bad max_deps" true (rejects { base with Generator.max_deps = 0 });
  Alcotest.(check bool) "bad hubs" true (rejects { base with Generator.hubs = 4 });
  Alcotest.(check bool) "bad volume range" true
    (rejects { base with Generator.volume_log_range = -1.0 });
  Alcotest.(check bool) "too many comms" true
    (rejects { base with Generator.communications = Some 11 })

let test_communications_bound () =
  let spec =
    {
      (Generator.default_spec ~name:"g" ~cores:6 ~packets:40 ~total_bits:4_000) with
      Generator.communications = Some 9;
    }
  in
  let cdcg = Generator.generate (Rng.create ~seed:3) spec in
  Alcotest.(check int) "exactly the requested pair count" 9
    (Cwg.ncc (Cwg.of_cdcg cdcg))

let test_hub_concentration () =
  (* With one hub, most communications touch a single core. *)
  let spec = Generator.default_spec ~name:"g" ~cores:8 ~packets:60 ~total_bits:6_000 in
  let cdcg = Generator.generate (Rng.create ~seed:11) spec in
  let cwg = Cwg.of_cdcg cdcg in
  let touches core =
    List.length
      (List.filter (fun (s, d, _) -> s = core || d = core) (Cwg.communications cwg))
  in
  let max_touches =
    List.fold_left max 0 (List.init 8 touches)
  in
  Alcotest.(check bool) "a hub touches most pairs" true
    (max_touches >= Cwg.ncc cwg / 2)

let test_validates_as_dag () =
  (* Deps must always form a DAG; Cdcg.create_exn inside generate would
     raise otherwise, but double-check with an explicit topo sort. *)
  let spec = Generator.default_spec ~name:"g" ~cores:5 ~packets:50 ~total_bits:5_000 in
  let cdcg = Generator.generate (Rng.create ~seed:21) spec in
  Alcotest.(check bool) "acyclic" true
    (Nocmap_graph.Topo.is_dag (Cdcg.to_digraph cdcg))

let suite =
  ( "tgff-generator",
    [
      QCheck_alcotest.to_alcotest prop_statistics_exact;
      QCheck_alcotest.to_alcotest prop_every_core_communicates;
      QCheck_alcotest.to_alcotest prop_deterministic;
      Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
      Alcotest.test_case "spec validation" `Quick test_spec_validation;
      Alcotest.test_case "communications bound" `Quick test_communications_bound;
      Alcotest.test_case "hub concentration" `Quick test_hub_concentration;
      Alcotest.test_case "always a DAG" `Quick test_validates_as_dag;
    ] )
