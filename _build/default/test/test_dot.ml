module Digraph = Nocmap_graph.Digraph
module Dot = Nocmap_graph.Dot

let sample () =
  let g = Digraph.create ~n:2 in
  Digraph.add_edge g ~src:0 ~dst:1 ~label:42;
  g

let test_render_structure () =
  let doc =
    Dot.render ~graph_name:"test" ~vertex_name:(Printf.sprintf "v%d") (sample ())
  in
  Test_util.check_contains ~msg:"digraph header" ~needle:"digraph \"test\"" doc;
  Test_util.check_contains ~msg:"vertex" ~needle:"\"v0\";" doc;
  Test_util.check_contains ~msg:"edge" ~needle:"\"v0\" -> \"v1\"" doc

let test_attributes () =
  let doc =
    Dot.render ~vertex_name:(Printf.sprintf "v%d")
      ~vertex_attrs:(fun v -> [ ("shape", if v = 0 then "box" else "circle") ])
      ~edge_attrs:(fun ~src:_ ~dst:_ ~label -> [ ("label", string_of_int label) ])
      (sample ())
  in
  Test_util.check_contains ~msg:"vertex attr" ~needle:"[shape=\"box\"]" doc;
  Test_util.check_contains ~msg:"edge attr" ~needle:"[label=\"42\"]" doc

let test_escaping () =
  let g = Digraph.create ~n:1 in
  let doc = Dot.render ~vertex_name:(fun _ -> "we\"ird\\name") g in
  Test_util.check_contains ~msg:"escaped quote" ~needle:"we\\\"ird\\\\name" doc

let test_save () =
  let path = Filename.temp_file "nocmap" ".dot" in
  Dot.save ~path "digraph {}\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "roundtrip" "digraph {}" line

let suite =
  ( "dot",
    [
      Alcotest.test_case "render structure" `Quick test_render_structure;
      Alcotest.test_case "attributes" `Quick test_attributes;
      Alcotest.test_case "escaping" `Quick test_escaping;
      Alcotest.test_case "save" `Quick test_save;
    ] )
