module Related_work = Nocmap.Related_work
module Mesh = Nocmap_noc.Mesh
module Rng = Nocmap_util.Rng
module Generator = Nocmap_tgff.Generator

let comparison () =
  let spec = Generator.default_spec ~name:"rw" ~cores:8 ~packets:40 ~total_bits:40_000 in
  let cdcg = Generator.generate (Rng.create ~seed:5) spec in
  Related_work.compare_random_vs_cwm
    ~rng:(Rng.create ~seed:6)
    ~random_samples:50
    ~mesh:(Mesh.create ~cols:3 ~rows:3)
    cdcg

let test_optimized_beats_random () =
  let c = comparison () in
  Alcotest.(check bool) "beats the random mean" true
    (c.Related_work.optimized_energy < c.Related_work.random_mean_energy);
  Alcotest.(check bool) "beats the best random draw" true
    (c.Related_work.optimized_energy <= c.Related_work.random_best_energy);
  Alcotest.(check bool) "positive saving" true (c.Related_work.saving_percent > 0.0)

let test_consistent_fields () =
  let c = comparison () in
  Alcotest.(check bool) "mean >= best" true
    (c.Related_work.random_mean_energy >= c.Related_work.random_best_energy);
  let expected =
    100.0
    *. (c.Related_work.random_mean_energy -. c.Related_work.optimized_energy)
    /. c.Related_work.random_mean_energy
  in
  Alcotest.(check (float 1e-9)) "saving formula" expected c.Related_work.saving_percent

let test_render () =
  let out = Related_work.render [ comparison () ] in
  Test_util.check_contains ~msg:"title cites [4]" ~needle:"Hu & Marculescu" out;
  Test_util.check_contains ~msg:"row present" ~needle:"rw" out

let suite =
  ( "related-work",
    [
      Alcotest.test_case "optimized beats random" `Quick test_optimized_beats_random;
      Alcotest.test_case "consistent fields" `Quick test_consistent_fields;
      Alcotest.test_case "render" `Quick test_render;
    ] )
