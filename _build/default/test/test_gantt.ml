module Mesh = Nocmap_noc.Mesh
module Crg = Nocmap_noc.Crg
module Noc_params = Nocmap_energy.Noc_params
module Wormhole = Nocmap_sim.Wormhole
module Gantt = Nocmap_sim.Gantt
module Fig1 = Nocmap_apps.Fig1

let crg = Crg.create (Mesh.create ~cols:2 ~rows:2)
let params = Noc_params.paper_example

let trace () = Wormhole.run ~params ~crg ~placement:Fig1.mapping_c Fig1.cdcg

let test_row_per_packet () =
  let rendered = Gantt.render ~params ~cdcg:Fig1.cdcg (trace ()) in
  let rows =
    String.split_on_char '\n' rendered
    |> List.filter (fun l -> Test_util.contains_substring ~needle:"|" l)
  in
  Alcotest.(check int) "six packet rows" 6 (List.length rows)

let test_width_respected () =
  let rendered = Gantt.render ~params ~cdcg:Fig1.cdcg ~width:40 (trace ()) in
  String.split_on_char '\n' rendered
  |> List.iter (fun line ->
         match String.index_opt line '|' with
         | Some first -> begin
           match String.rindex_opt line '|' with
           | Some last -> Alcotest.(check int) "timeline width" 41 (last - first)
           | None -> ()
         end
         | None -> ())

let test_header_reports_texec () =
  let rendered = Gantt.render ~params ~cdcg:Fig1.cdcg (trace ()) in
  Test_util.check_contains ~msg:"cycle count" ~needle:"time 0 .. 100 cycles" rendered;
  Test_util.check_contains ~msg:"nanoseconds" ~needle:"(100 ns)" rendered

let test_computation_prefix () =
  (* Every row starts with '=' (computation) unless computation is 0 and
     the row begins mid-axis; in fig1 all packets compute first. *)
  let rendered = Gantt.render ~params ~cdcg:Fig1.cdcg (trace ()) in
  let rows =
    String.split_on_char '\n' rendered
    |> List.filter (fun l -> Test_util.contains_substring ~needle:"):" l)
  in
  List.iter
    (fun row ->
      match String.index_opt row '|' with
      | None -> ()
      | Some bar ->
        let timeline = String.sub row (bar + 1) (String.length row - bar - 2) in
        let first_mark =
          String.to_seq timeline |> Seq.drop_while (fun c -> c = ' ') |> Seq.uncons
        in
        (match first_mark with
        | Some (c, _) -> Alcotest.(check char) "starts with computation" '=' c
        | None -> Alcotest.fail "empty timeline"))
    rows

let test_requires_traced_run () =
  let untraced =
    Wormhole.run ~trace:false ~params ~crg ~placement:Fig1.mapping_c Fig1.cdcg
  in
  Alcotest.(check bool) "rejects traceless" true
    (match Gantt.render ~params ~cdcg:Fig1.cdcg untraced with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  ( "gantt",
    [
      Alcotest.test_case "row per packet" `Quick test_row_per_packet;
      Alcotest.test_case "width respected" `Quick test_width_respected;
      Alcotest.test_case "header reports texec" `Quick test_header_reports_texec;
      Alcotest.test_case "computation prefix" `Quick test_computation_prefix;
      Alcotest.test_case "requires traced run" `Quick test_requires_traced_run;
    ] )
