module Mesh = Nocmap_noc.Mesh
module Routing = Nocmap_noc.Routing

let gen_mesh_pair =
  QCheck2.Gen.(
    let* cols = int_range 1 10 in
    let* rows = int_range 1 10 in
    let mesh = Mesh.create ~cols ~rows in
    let n = Mesh.tile_count mesh in
    let* src = int_range 0 (n - 1) in
    let* dst = int_range 0 (n - 1) in
    return (mesh, src, dst))

let path_is_valid mesh path ~src ~dst =
  match path with
  | [] -> false
  | first :: _ ->
    let rec adjacent = function
      | [] | [ _ ] -> true
      | a :: (b :: _ as rest) -> Mesh.manhattan mesh a b = 1 && adjacent rest
    in
    let last = List.nth path (List.length path - 1) in
    first = src && last = dst && adjacent path

let prop_xy_valid =
  QCheck2.Test.make ~name:"XY paths are connected minimal routes" ~count:400
    gen_mesh_pair (fun (mesh, src, dst) ->
      let path = Routing.router_path mesh Routing.Xy ~src ~dst in
      path_is_valid mesh path ~src ~dst
      && List.length path = Mesh.manhattan mesh src dst + 1)

let prop_yx_valid =
  QCheck2.Test.make ~name:"YX paths are connected minimal routes" ~count:400
    gen_mesh_pair (fun (mesh, src, dst) ->
      let path = Routing.router_path mesh Routing.Yx ~src ~dst in
      path_is_valid mesh path ~src ~dst
      && List.length path = Mesh.manhattan mesh src dst + 1)

let test_xy_order () =
  (* From tile 0 (0,0) to tile 8 (2,2) on 3x3: X first then Y. *)
  let mesh = Mesh.create ~cols:3 ~rows:3 in
  Alcotest.(check (list int)) "xy" [ 0; 1; 2; 5; 8 ]
    (Routing.router_path mesh Routing.Xy ~src:0 ~dst:8);
  Alcotest.(check (list int)) "yx" [ 0; 3; 6; 7; 8 ]
    (Routing.router_path mesh Routing.Yx ~src:0 ~dst:8)

let test_self_path () =
  let mesh = Mesh.create ~cols:3 ~rows:3 in
  Alcotest.(check (list int)) "self" [ 4 ] (Routing.router_path mesh Routing.Xy ~src:4 ~dst:4);
  Alcotest.(check int) "hop count 1" 1 (Routing.hop_count mesh Routing.Xy ~src:4 ~dst:4)

let test_paper_example_routes () =
  (* 2x2 mesh of Figure 1: A->F in mapping (c) goes W2 -> W1 -> W3,
     i.e. tiles 1 -> 0 -> 2. *)
  let mesh = Mesh.create ~cols:2 ~rows:2 in
  Alcotest.(check (list int)) "W2 to W3" [ 1; 0; 2 ]
    (Routing.router_path mesh Routing.Xy ~src:1 ~dst:2)

let test_links_of_path () =
  Alcotest.(check (list (pair int int))) "pairs" [ (0, 1); (1, 2) ]
    (Routing.links_of_path [ 0; 1; 2 ]);
  Alcotest.(check (list (pair int int))) "singleton" [] (Routing.links_of_path [ 7 ])

let test_algorithm_strings () =
  Alcotest.(check string) "xy" "xy" (Routing.algorithm_to_string Routing.Xy);
  Alcotest.(check bool) "parse yx" true (Routing.algorithm_of_string " YX " = Routing.Yx);
  Alcotest.check_raises "unknown"
    (Invalid_argument "Routing.algorithm_of_string: unknown algorithm zz") (fun () ->
      ignore (Routing.algorithm_of_string "zz"))

let suite =
  ( "routing",
    [
      QCheck_alcotest.to_alcotest prop_xy_valid;
      QCheck_alcotest.to_alcotest prop_yx_valid;
      Alcotest.test_case "xy vs yx order" `Quick test_xy_order;
      Alcotest.test_case "self path" `Quick test_self_path;
      Alcotest.test_case "paper example route" `Quick test_paper_example_routes;
      Alcotest.test_case "links of path" `Quick test_links_of_path;
      Alcotest.test_case "algorithm strings" `Quick test_algorithm_strings;
    ] )
