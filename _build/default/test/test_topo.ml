module Digraph = Nocmap_graph.Digraph
module Topo = Nocmap_graph.Topo

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let g = Digraph.create ~n:4 in
  Digraph.add_edge g ~src:0 ~dst:1 ~label:0;
  Digraph.add_edge g ~src:0 ~dst:2 ~label:0;
  Digraph.add_edge g ~src:1 ~dst:3 ~label:0;
  Digraph.add_edge g ~src:2 ~dst:3 ~label:0;
  g

let cyclic () =
  let g = Digraph.create ~n:3 in
  Digraph.add_edge g ~src:0 ~dst:1 ~label:0;
  Digraph.add_edge g ~src:1 ~dst:2 ~label:0;
  Digraph.add_edge g ~src:2 ~dst:0 ~label:0;
  g

let valid_topological_order g order =
  let pos = Array.make (Digraph.vertex_count g) (-1) in
  List.iteri (fun i v -> pos.(v) <- i) order;
  List.length order = Digraph.vertex_count g
  && Array.for_all (fun p -> p >= 0) pos
  && Digraph.fold_edges g ~init:true ~f:(fun acc ~src ~dst ~label:_ ->
         acc && pos.(src) < pos.(dst))

let test_topo_dag () =
  let g = diamond () in
  match Topo.topological_order g with
  | None -> Alcotest.fail "diamond is a DAG"
  | Some order ->
    Alcotest.(check bool) "valid order" true (valid_topological_order g order)

let test_topo_cycle () =
  Alcotest.(check bool) "cycle has no order" true (Topo.topological_order (cyclic ()) = None);
  Alcotest.(check bool) "is_dag false" false (Topo.is_dag (cyclic ()));
  Alcotest.(check bool) "is_dag true" true (Topo.is_dag (diamond ()))

let test_cycle_witness () =
  match Topo.cycle (cyclic ()) with
  | None -> Alcotest.fail "expected a cycle"
  | Some vs ->
    Alcotest.(check int) "length 3" 3 (List.length vs);
    Alcotest.(check (list int)) "the full cycle, sorted" [ 0; 1; 2 ]
      (List.sort compare vs)

let test_cycle_none_on_dag () =
  Alcotest.(check bool) "no witness on DAG" true (Topo.cycle (diamond ()) = None)

let test_reachable () =
  let g = diamond () in
  let from0 = Topo.reachable_from g 0 in
  Alcotest.(check (array bool)) "all reachable from 0" [| true; true; true; true |] from0;
  let from1 = Topo.reachable_from g 1 in
  Alcotest.(check (array bool)) "only 1 and 3 from 1" [| false; true; false; true |] from1

let test_longest_path () =
  let g = diamond () in
  match Topo.longest_path_lengths g ~weight:(fun v -> v + 1) with
  | None -> Alcotest.fail "DAG expected"
  | Some dist ->
    (* weights: v0=1 v1=2 v2=3 v3=4; longest to 3 is 0,2,3 = 8 *)
    Alcotest.(check int) "longest ending at 3" 8 dist.(3);
    Alcotest.(check int) "source" 1 dist.(0)

let test_longest_path_cyclic () =
  Alcotest.(check bool) "cyclic gives None" true
    (Topo.longest_path_lengths (cyclic ()) ~weight:(fun _ -> 1) = None)

(* Random DAG: edges only from lower to higher indices. *)
let gen_dag =
  QCheck2.Gen.(
    let* n = int_range 2 30 in
    let* edges = list_size (int_range 0 80) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
    return (n, edges))

let prop_topo_on_random_dag =
  QCheck2.Test.make ~name:"Kahn order is valid on random DAGs" ~count:200 gen_dag
    (fun (n, edges) ->
      let g = Digraph.create ~n in
      List.iter
        (fun (a, b) ->
          if a <> b then
            let src = min a b and dst = max a b in
            Digraph.add_edge g ~src ~dst ~label:0)
        edges;
      match Topo.topological_order g with
      | None -> false
      | Some order -> valid_topological_order g order)

let suite =
  ( "topo",
    [
      Alcotest.test_case "topological order on DAG" `Quick test_topo_dag;
      Alcotest.test_case "cycle detection" `Quick test_topo_cycle;
      Alcotest.test_case "cycle witness" `Quick test_cycle_witness;
      Alcotest.test_case "no witness on DAG" `Quick test_cycle_none_on_dag;
      Alcotest.test_case "reachability" `Quick test_reachable;
      Alcotest.test_case "longest path" `Quick test_longest_path;
      Alcotest.test_case "longest path cyclic" `Quick test_longest_path_cyclic;
      QCheck_alcotest.to_alcotest prop_topo_on_random_dag;
    ] )
