test/test_torus.ml: Alcotest List Nocmap_energy Nocmap_graph Nocmap_model Nocmap_noc Nocmap_sim Printf
