test/test_generator.ml: Alcotest Fun List Nocmap_graph Nocmap_model Nocmap_tgff Nocmap_util QCheck2 QCheck_alcotest
