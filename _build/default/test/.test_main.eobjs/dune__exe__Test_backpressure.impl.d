test/test_backpressure.ml: Alcotest Array Nocmap_energy Nocmap_model Nocmap_noc Nocmap_sim
