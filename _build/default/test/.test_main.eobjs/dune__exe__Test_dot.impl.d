test/test_dot.ml: Alcotest Filename Nocmap_graph Printf Sys Test_util
