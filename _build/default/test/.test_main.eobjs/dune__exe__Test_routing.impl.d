test/test_routing.ml: Alcotest List Nocmap_noc QCheck2 QCheck_alcotest
