test/test_metrics.ml: Alcotest Array Format Nocmap_apps Nocmap_model Printf Test_util
