test/test_flit_sim.ml: Alcotest Array Nocmap_apps Nocmap_energy Nocmap_mapping Nocmap_noc Nocmap_sim Nocmap_tgff Nocmap_util Printf QCheck2 QCheck_alcotest
