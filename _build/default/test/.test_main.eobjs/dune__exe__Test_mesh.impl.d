test/test_mesh.ml: Alcotest List Nocmap_noc Printf QCheck2 QCheck_alcotest
