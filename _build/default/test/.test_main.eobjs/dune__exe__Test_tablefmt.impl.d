test/test_tablefmt.ml: Alcotest List Nocmap_util String Test_util
