test/test_sim_example.ml: Alcotest Array List Nocmap_apps Nocmap_energy Nocmap_mapping Nocmap_noc Nocmap_sim Nocmap_util Printf String Test_util
