test/test_cwg.ml: Alcotest Nocmap_apps Nocmap_model Nocmap_tgff Nocmap_util QCheck2 QCheck_alcotest Test_util
