test/test_energy.ml: Alcotest List Nocmap_energy
