test/test_apps.ml: Alcotest Array List Nocmap_apps Nocmap_graph Nocmap_model
