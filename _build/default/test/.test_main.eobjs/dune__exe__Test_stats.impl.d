test/test_stats.ml: Alcotest Nocmap_util QCheck2 QCheck_alcotest
