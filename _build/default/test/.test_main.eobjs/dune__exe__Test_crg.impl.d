test/test_crg.ml: Alcotest Array List Nocmap_graph Nocmap_noc Printf
