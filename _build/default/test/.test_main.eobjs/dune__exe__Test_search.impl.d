test/test_search.ml: Alcotest Nocmap_apps Nocmap_energy Nocmap_mapping Nocmap_model Nocmap_noc Nocmap_util
