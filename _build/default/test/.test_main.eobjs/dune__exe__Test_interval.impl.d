test/test_interval.ml: Alcotest Nocmap_util QCheck2 QCheck_alcotest
