test/test_textio.ml: Alcotest Filename List Nocmap_apps Nocmap_model Nocmap_tgff Nocmap_util QCheck2 QCheck_alcotest Sys Test_util
