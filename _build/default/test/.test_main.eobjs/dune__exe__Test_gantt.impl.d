test/test_gantt.ml: Alcotest List Nocmap_apps Nocmap_energy Nocmap_noc Nocmap_sim Seq String Test_util
