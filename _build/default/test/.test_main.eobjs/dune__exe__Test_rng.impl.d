test/test_rng.ml: Alcotest Array Fun List Nocmap_util QCheck2 QCheck_alcotest
