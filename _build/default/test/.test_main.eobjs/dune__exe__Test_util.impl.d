test/test_util.ml: Alcotest Printf String
