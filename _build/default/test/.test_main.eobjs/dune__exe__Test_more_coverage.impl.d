test/test_more_coverage.ml: Alcotest Array Format Nocmap_apps Nocmap_energy Nocmap_graph Nocmap_mapping Nocmap_model Nocmap_noc Nocmap_sim Nocmap_util Printf Test_util
