test/test_heap.ml: Alcotest Int List Nocmap_util QCheck2 QCheck_alcotest
