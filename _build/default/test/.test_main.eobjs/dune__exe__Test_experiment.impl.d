test/test_experiment.ml: Alcotest List Nocmap Nocmap_apps Nocmap_energy Nocmap_mapping Nocmap_model Nocmap_noc Nocmap_tgff Nocmap_util Test_util
