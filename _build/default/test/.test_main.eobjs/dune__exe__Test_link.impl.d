test/test_link.ml: Alcotest List Nocmap_noc Printf
