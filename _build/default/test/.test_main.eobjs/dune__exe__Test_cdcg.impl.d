test/test_cdcg.ml: Alcotest List Nocmap_graph Nocmap_model Test_util
