test/test_topo.ml: Alcotest Array List Nocmap_graph QCheck2 QCheck_alcotest
