test/test_transform.ml: Alcotest Array List Nocmap_apps Nocmap_energy Nocmap_graph Nocmap_model Nocmap_noc Nocmap_sim Nocmap_tgff Nocmap_util QCheck2 QCheck_alcotest Test_util
