test/test_placement_io.ml: Alcotest Filename Nocmap_apps Nocmap_mapping Nocmap_model Nocmap_noc Sys Test_util
