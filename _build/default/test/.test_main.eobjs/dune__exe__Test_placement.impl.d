test/test_placement.ml: Alcotest Nocmap_mapping Nocmap_util QCheck2 QCheck_alcotest Test_util
