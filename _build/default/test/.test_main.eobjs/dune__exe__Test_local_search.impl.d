test/test_local_search.ml: Alcotest Nocmap_apps Nocmap_energy Nocmap_mapping Nocmap_noc
