test/test_weighted.ml: Alcotest List Nocmap_apps Nocmap_energy Nocmap_mapping Nocmap_noc Nocmap_util Printf
