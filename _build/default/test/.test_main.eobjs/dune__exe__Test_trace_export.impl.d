test/test_trace_export.ml: Alcotest Filename List Nocmap_apps Nocmap_energy Nocmap_noc Nocmap_sim String Sys Test_util
