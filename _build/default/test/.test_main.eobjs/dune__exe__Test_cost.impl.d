test/test_cost.ml: Alcotest Array Nocmap_apps Nocmap_energy Nocmap_mapping Nocmap_model Nocmap_noc Nocmap_tgff Nocmap_util
