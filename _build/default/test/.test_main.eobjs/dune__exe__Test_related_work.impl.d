test/test_related_work.ml: Alcotest Nocmap Nocmap_noc Nocmap_tgff Nocmap_util Test_util
