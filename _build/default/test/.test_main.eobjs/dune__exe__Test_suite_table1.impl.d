test/test_suite_table1.ml: Alcotest List Nocmap Nocmap_model Nocmap_noc Nocmap_tgff Test_util
