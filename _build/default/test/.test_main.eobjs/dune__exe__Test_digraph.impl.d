test/test_digraph.ml: Alcotest List Nocmap_graph
