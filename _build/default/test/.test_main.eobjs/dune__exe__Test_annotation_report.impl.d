test/test_annotation_report.ml: Alcotest Array Nocmap_apps Nocmap_energy Nocmap_model Nocmap_noc Nocmap_sim Test_util
