test/test_hotspot.ml: Alcotest List Nocmap_apps Nocmap_energy Nocmap_noc Nocmap_sim Test_util
