module Cdcg = Nocmap_model.Cdcg
module Digraph = Nocmap_graph.Digraph

let packet ?(label = "p") ~src ~dst ~compute ~bits () =
  { Cdcg.src; dst; compute; bits; label }

let simple () =
  Cdcg.create_exn ~name:"t" ~core_names:[| "a"; "b"; "c" |]
    ~packets:
      [|
        packet ~label:"p0" ~src:0 ~dst:1 ~compute:5 ~bits:10 ();
        packet ~label:"p1" ~src:1 ~dst:2 ~compute:3 ~bits:20 ();
        packet ~label:"p2" ~src:0 ~dst:2 ~compute:7 ~bits:30 ();
      |]
    ~deps:[ (0, 1); (0, 2) ]

let expect_error ~needle result =
  match result with
  | Ok _ -> Alcotest.fail "expected validation error"
  | Error msg -> Test_util.check_contains ~msg:"error message" ~needle msg

let test_accessors () =
  let t = simple () in
  Alcotest.(check int) "cores" 3 (Cdcg.core_count t);
  Alcotest.(check int) "packets" 3 (Cdcg.packet_count t);
  Alcotest.(check int) "bits" 60 (Cdcg.total_bits t);
  Alcotest.(check int) "deps" 2 (Cdcg.dependence_count t);
  Alcotest.(check int) "ndp" 5 (Cdcg.ndp t)

let test_adjacency () =
  let t = simple () in
  Alcotest.(check (list int)) "preds of p1" [ 0 ] (Cdcg.predecessors t 1);
  Alcotest.(check (list int)) "succs of p0" [ 1; 2 ] (List.sort compare (Cdcg.successors t 0));
  Alcotest.(check (list int)) "start packets" [ 0 ] (Cdcg.start_packets t)

let test_packets_from () =
  let t = simple () in
  Alcotest.(check (list int)) "a->c" [ 2 ] (Cdcg.packets_from t ~src:0 ~dst:2);
  Alcotest.(check (list int)) "none" [] (Cdcg.packets_from t ~src:2 ~dst:0)

let test_validation_errors () =
  let mk ?(core_names = [| "a"; "b" |]) ?(packets = [||]) ?(deps = []) () =
    Cdcg.create ~name:"x" ~core_names ~packets ~deps
  in
  expect_error ~needle:"no cores" (mk ~core_names:[||] ());
  expect_error ~needle:"duplicate core name"
    (mk ~core_names:[| "a"; "a" |] ());
  expect_error ~needle:"source equals destination"
    (mk ~packets:[| packet ~src:0 ~dst:0 ~compute:1 ~bits:1 () |] ());
  expect_error ~needle:"out of range"
    (mk ~packets:[| packet ~src:0 ~dst:7 ~compute:1 ~bits:1 () |] ());
  expect_error ~needle:"volume must be positive"
    (mk ~packets:[| packet ~src:0 ~dst:1 ~compute:1 ~bits:0 () |] ());
  expect_error ~needle:"computation time"
    (mk ~packets:[| packet ~src:0 ~dst:1 ~compute:(-1) ~bits:1 () |] ());
  expect_error ~needle:"packet index out of range"
    (mk ~packets:[| packet ~src:0 ~dst:1 ~compute:1 ~bits:1 () |] ~deps:[ (0, 9) ] ())

let test_cycle_rejected () =
  let packets =
    [|
      packet ~label:"x" ~src:0 ~dst:1 ~compute:1 ~bits:1 ();
      packet ~label:"y" ~src:1 ~dst:0 ~compute:1 ~bits:1 ();
    |]
  in
  expect_error ~needle:"dependence cycle"
    (Cdcg.create ~name:"c" ~core_names:[| "a"; "b" |] ~packets
       ~deps:[ (0, 1); (1, 0) ])

let test_to_digraph () =
  let g = Cdcg.to_digraph (simple ()) in
  Alcotest.(check int) "vertices" 3 (Digraph.vertex_count g);
  Alcotest.(check bool) "edge 0->1" true (Digraph.mem_edge g ~src:0 ~dst:1)

let test_critical_path () =
  (* chain p0 -> p1: 5 + 3; p0 -> p2: 5 + 7 = 12 *)
  Alcotest.(check int) "critical path" 12 (Cdcg.critical_path_cycles (simple ()))

let test_create_exn () =
  Alcotest.check_raises "create_exn propagates"
    (Invalid_argument "Cdcg.create_exn: CDCG has no cores") (fun () ->
      ignore (Cdcg.create_exn ~name:"x" ~core_names:[||] ~packets:[||] ~deps:[]))

let suite =
  ( "cdcg",
    [
      Alcotest.test_case "accessors" `Quick test_accessors;
      Alcotest.test_case "adjacency" `Quick test_adjacency;
      Alcotest.test_case "packets_from" `Quick test_packets_from;
      Alcotest.test_case "validation errors" `Quick test_validation_errors;
      Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
      Alcotest.test_case "to_digraph" `Quick test_to_digraph;
      Alcotest.test_case "critical path" `Quick test_critical_path;
      Alcotest.test_case "create_exn" `Quick test_create_exn;
    ] )
