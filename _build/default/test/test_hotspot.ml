module Mesh = Nocmap_noc.Mesh
module Crg = Nocmap_noc.Crg
module Link = Nocmap_noc.Link
module Noc_params = Nocmap_energy.Noc_params
module Wormhole = Nocmap_sim.Wormhole
module Hotspot = Nocmap_sim.Hotspot
module Fig1 = Nocmap_apps.Fig1

let crg = Crg.create (Mesh.create ~cols:2 ~rows:2)

let trace () =
  Wormhole.run ~params:Noc_params.paper_example ~crg ~placement:Fig1.mapping_c
    Fig1.cdcg

let test_loads_cover_all_links () =
  let loads = Hotspot.link_loads ~crg (trace ()) in
  Alcotest.(check int) "every physical link reported" 8 (List.length loads)

let test_busiest_link () =
  (* In mapping (c), link W1->W3 (tiles 0->2) carries B->F (40 flits)
     and A->F (15 flits): the clear hotspot. *)
  match Hotspot.link_loads ~crg (trace ()) with
  | [] -> Alcotest.fail "no loads"
  | top :: _ ->
    let mesh = Crg.mesh crg in
    Alcotest.(check int) "hotspot is L(0->2)" (Link.id mesh ~src:0 ~dst:2)
      top.Hotspot.link;
    Alcotest.(check int) "two packets crossed" 2 top.Hotspot.packets;
    (* B->F occupies [13,53] (41 cycles) and A->F [55,70] (16). *)
    Alcotest.(check int) "busy cycles" 57 top.Hotspot.busy_cycles

let test_sorted_descending () =
  let loads = Hotspot.link_loads ~crg (trace ()) in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "descending" true
        (a.Hotspot.busy_cycles >= b.Hotspot.busy_cycles);
      check rest
    | [ _ ] | [] -> ()
  in
  check loads

let test_utilization_bounds () =
  let t = trace () in
  let peak = Hotspot.peak_utilization ~crg t in
  let mean = Hotspot.mean_utilization ~crg t in
  Alcotest.(check bool) "peak within [0,1]" true (peak >= 0.0 && peak <= 1.0);
  Alcotest.(check bool) "mean <= peak" true (mean <= peak +. 1e-9)

let test_render () =
  let out = Hotspot.render ~crg ~top:3 (trace ()) in
  Test_util.check_contains ~msg:"title" ~needle:"Busiest links" out;
  Test_util.check_contains ~msg:"hotspot row" ~needle:"L(0->2)" out

let suite =
  ( "hotspot",
    [
      Alcotest.test_case "covers all links" `Quick test_loads_cover_all_links;
      Alcotest.test_case "busiest link" `Quick test_busiest_link;
      Alcotest.test_case "sorted descending" `Quick test_sorted_descending;
      Alcotest.test_case "utilization bounds" `Quick test_utilization_bounds;
      Alcotest.test_case "render" `Quick test_render;
    ] )
