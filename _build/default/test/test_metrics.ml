module Metrics = Nocmap_model.Metrics
module Cdcg = Nocmap_model.Cdcg
module Fig1 = Nocmap_apps.Fig1

let test_fig1_metrics () =
  let m = Metrics.of_cdcg Fig1.cdcg in
  (* Longest chain: pAB1/pEA1 -> pAF1 -> pFB1 = depth 3. *)
  Alcotest.(check int) "depth" 3 m.Metrics.depth;
  (* Level 1 holds the three root packets. *)
  Alcotest.(check int) "width" 3 m.Metrics.width;
  Alcotest.(check (float 1e-9)) "parallelism" 2.0 m.Metrics.parallelism;
  Alcotest.(check (float 1e-9)) "mean bits" 20.0 m.Metrics.mean_bits;
  Alcotest.(check int) "max bits" 40 m.Metrics.max_bits;
  Alcotest.(check (float 1e-9)) "concentration" (40.0 /. 120.0)
    m.Metrics.volume_concentration

let test_chain_metrics () =
  let packet i =
    { Cdcg.src = i mod 2; dst = (i + 1) mod 2; compute = 1; bits = 10; label = Printf.sprintf "p%d" i }
  in
  let cdcg =
    Cdcg.create_exn ~name:"chain" ~core_names:[| "a"; "b" |]
      ~packets:(Array.init 5 packet)
      ~deps:[ (0, 1); (1, 2); (2, 3); (3, 4) ]
  in
  let m = Metrics.of_cdcg cdcg in
  Alcotest.(check int) "depth = packets" 5 m.Metrics.depth;
  Alcotest.(check int) "width 1" 1 m.Metrics.width;
  Alcotest.(check (float 1e-9)) "no parallelism" 1.0 m.Metrics.parallelism

let test_independent_metrics () =
  let packet i =
    { Cdcg.src = 0; dst = 1; compute = 1; bits = 10; label = Printf.sprintf "p%d" i }
  in
  let cdcg =
    Cdcg.create_exn ~name:"flat" ~core_names:[| "a"; "b" |]
      ~packets:(Array.init 4 packet) ~deps:[]
  in
  let m = Metrics.of_cdcg cdcg in
  Alcotest.(check int) "depth 1" 1 m.Metrics.depth;
  Alcotest.(check int) "width = packets" 4 m.Metrics.width

let test_pp () =
  let rendered = Format.asprintf "%a" Metrics.pp (Metrics.of_cdcg Fig1.cdcg) in
  Test_util.check_contains ~msg:"mentions depth" ~needle:"depth 3" rendered

let suite =
  ( "metrics",
    [
      Alcotest.test_case "fig1" `Quick test_fig1_metrics;
      Alcotest.test_case "chain" `Quick test_chain_metrics;
      Alcotest.test_case "independent" `Quick test_independent_metrics;
      Alcotest.test_case "pp" `Quick test_pp;
    ] )
