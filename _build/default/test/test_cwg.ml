module Cwg = Nocmap_model.Cwg
module Cdcg = Nocmap_model.Cdcg
module Fig1 = Nocmap_apps.Fig1

let test_create_accumulates () =
  let t =
    Cwg.create_exn ~name:"x" ~core_names:[| "a"; "b" |]
      ~edges:[ (0, 1, 10); (0, 1, 5); (1, 0, 3) ]
  in
  Alcotest.(check int) "accumulated" 15 (Cwg.weight t ~src:0 ~dst:1);
  Alcotest.(check int) "reverse" 3 (Cwg.weight t ~src:1 ~dst:0);
  Alcotest.(check int) "ncc" 2 (Cwg.ncc t);
  Alcotest.(check int) "total" 18 (Cwg.total_bits t)

let test_create_errors () =
  let check_error ~needle edges =
    match Cwg.create ~name:"x" ~core_names:[| "a"; "b" |] ~edges with
    | Ok _ -> Alcotest.fail "expected error"
    | Error msg -> Test_util.check_contains ~msg:"error" ~needle msg
  in
  check_error ~needle:"self communication" [ (0, 0, 5) ];
  check_error ~needle:"out of range" [ (0, 5, 5) ];
  check_error ~needle:"volume must be positive" [ (0, 1, 0) ]

let test_of_cdcg_fig1 () =
  (* The paper's Figure 1(a): wAB=15, wAF=15, wBF=40, wEA=35, wFB=15. *)
  let cwg = Fig1.cwg in
  let w src dst = Cwg.weight cwg ~src ~dst in
  Alcotest.(check int) "wAB" 15 (w Fig1.core_a Fig1.core_b);
  Alcotest.(check int) "wAF" 15 (w Fig1.core_a Fig1.core_f);
  Alcotest.(check int) "wBF" 40 (w Fig1.core_b Fig1.core_f);
  Alcotest.(check int) "wEA (two packets summed)" 35 (w Fig1.core_e Fig1.core_a);
  Alcotest.(check int) "wFB" 15 (w Fig1.core_f Fig1.core_b);
  Alcotest.(check int) "ncc" 5 (Cwg.ncc cwg)

let test_communications_sorted () =
  let t =
    Cwg.create_exn ~name:"x" ~core_names:[| "a"; "b"; "c" |]
      ~edges:[ (2, 0, 1); (0, 1, 2); (1, 2, 3) ]
  in
  Alcotest.(check (list (triple int int int))) "ordered by (src,dst)"
    [ (0, 1, 2); (1, 2, 3); (2, 0, 1) ]
    (Cwg.communications t)

let prop_projection_preserves_volume =
  let gen = QCheck2.Gen.int_range 0 10_000 in
  QCheck2.Test.make ~name:"CDCG -> CWG projection preserves total volume" ~count:50
    gen (fun seed ->
      let rng = Nocmap_util.Rng.create ~seed in
      let spec =
        Nocmap_tgff.Generator.default_spec ~name:"p" ~cores:6 ~packets:20
          ~total_bits:5_000
      in
      let cdcg = Nocmap_tgff.Generator.generate rng spec in
      Cwg.total_bits (Cwg.of_cdcg cdcg) = Cdcg.total_bits cdcg)

let suite =
  ( "cwg",
    [
      Alcotest.test_case "create accumulates" `Quick test_create_accumulates;
      Alcotest.test_case "create errors" `Quick test_create_errors;
      Alcotest.test_case "of_cdcg on fig1" `Quick test_of_cdcg_fig1;
      Alcotest.test_case "communications sorted" `Quick test_communications_sorted;
      QCheck_alcotest.to_alcotest prop_projection_preserves_volume;
    ] )
