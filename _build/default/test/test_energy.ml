module Technology = Nocmap_energy.Technology
module Noc_params = Nocmap_energy.Noc_params
module Equations = Nocmap_energy.Equations

let feq = Alcotest.float 1e-20

let tech1pj =
  Technology.make ~name:"unit" ~feature_nm:100 ~e_rbit:1.0e-12 ~e_lbit:1.0e-12
    ~p_s_router:0.025e-12 ()

let test_technology_table () =
  Alcotest.(check int) "four points" 4 (List.length Technology.all);
  Alcotest.(check bool) "lookup" true (Technology.of_name "0.07um" = Some Technology.t007);
  Alcotest.(check bool) "lookup miss" true (Technology.of_name "90nm" = None);
  (* dynamic energy shrinks, static share grows along the scaling path *)
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "ERbit decreases" true
        (b.Technology.e_rbit < a.Technology.e_rbit);
      Alcotest.(check bool) "leakage per router grows" true
        (b.Technology.p_s_router > a.Technology.p_s_router);
      pairwise rest
    | [ _ ] | [] -> ()
  in
  pairwise Technology.all

let test_technology_validation () =
  Alcotest.check_raises "zero dynamic energy"
    (Invalid_argument "Technology.make: dynamic bit energies must be positive")
    (fun () ->
      ignore
        (Technology.make ~name:"bad" ~feature_nm:1 ~e_rbit:0.0 ~e_lbit:1.0
           ~p_s_router:0.0 ()))

let test_ebit_path () =
  (* Equation (2) with ERbit = ELbit = 1 pJ: K routers cost 2K-1 pJ. *)
  Alcotest.check feq "K=1" 1.0e-12 (Equations.ebit_path tech1pj ~routers:1);
  Alcotest.check feq "K=2" 3.0e-12 (Equations.ebit_path tech1pj ~routers:2);
  Alcotest.check feq "K=3" 5.0e-12 (Equations.ebit_path tech1pj ~routers:3);
  Alcotest.check_raises "K=0"
    (Invalid_argument "Equations.ebit_path: need at least one router") (fun () ->
      ignore (Equations.ebit_path tech1pj ~routers:0))

let test_communication_energy () =
  (* The paper's E->A example: 35 bits across 2 routers = 105 pJ. *)
  Alcotest.check feq "E->A" 105.0e-12
    (Equations.communication_energy tech1pj ~routers:2 ~bits:35)

let test_static () =
  (* The paper's example: PstNoC = 0.1 pJ/ns over 4 tiles, 100 ns -> 10 pJ. *)
  Alcotest.check feq "PstNoC" 0.1e-12 (Equations.static_power tech1pj ~tiles:4);
  Alcotest.check feq "EStNoC" 10.0e-12
    (Equations.static_energy tech1pj ~tiles:4 ~texec_ns:100.0);
  Alcotest.check feq "ENoC" 400.0e-12
    (Equations.total_energy ~dynamic:390.0e-12
       ~static_:(Equations.static_energy tech1pj ~tiles:4 ~texec_ns:100.0))

let test_static_share () =
  Alcotest.(check (float 1e-9)) "half" 0.5 (Equations.static_share ~dynamic:1.0 ~static_:1.0);
  Alcotest.(check (float 1e-9)) "zero" 0.0 (Equations.static_share ~dynamic:0.0 ~static_:0.0)

let test_params_defaults () =
  let p = Noc_params.paper_example in
  Alcotest.(check int) "tr" 2 p.Noc_params.tr;
  Alcotest.(check int) "tl" 1 p.Noc_params.tl;
  Alcotest.(check int) "flit" 1 p.Noc_params.flit_bits;
  Alcotest.(check bool) "unbounded" true (p.Noc_params.buffering = Noc_params.Unbounded)

let test_params_validation () =
  Alcotest.check_raises "bad tr"
    (Invalid_argument "Noc_params.make: tr and tl must be positive") (fun () ->
      ignore (Noc_params.make ~tr:0 ()));
  Alcotest.check_raises "bad buffer"
    (Invalid_argument "Noc_params.make: buffer capacity must be positive") (fun () ->
      ignore (Noc_params.make ~buffering:(Noc_params.Bounded 0) ()))

let test_flits_of_bits () =
  let p16 = Noc_params.make ~flit_bits:16 () in
  Alcotest.(check int) "exact" 2 (Noc_params.flits_of_bits p16 32);
  Alcotest.(check int) "round up" 3 (Noc_params.flits_of_bits p16 33);
  Alcotest.(check int) "tiny packet" 1 (Noc_params.flits_of_bits p16 1);
  Alcotest.check_raises "zero bits"
    (Invalid_argument "Noc_params.flits_of_bits: bits must be positive") (fun () ->
      ignore (Noc_params.flits_of_bits p16 0))

let test_delay_equations () =
  let p = Noc_params.paper_example in
  (* Equation (8) on the paper's A->B packet: K=2, n=15 -> 21 cycles. *)
  Alcotest.(check int) "eq 8" 21 (Noc_params.total_delay_cycles p ~routers:2 ~flits:15);
  (* (6) + (7) = (8) *)
  Alcotest.(check int) "6 plus 7 equals 8"
    (Noc_params.total_delay_cycles p ~routers:3 ~flits:40)
    (Noc_params.routing_delay_cycles p ~routers:3
    + Noc_params.packet_delay_cycles p ~flits:40);
  Alcotest.(check (float 1e-9)) "cycles to ns" 21.0 (Noc_params.cycles_to_ns p 21)

let suite =
  ( "energy",
    [
      Alcotest.test_case "technology table" `Quick test_technology_table;
      Alcotest.test_case "technology validation" `Quick test_technology_validation;
      Alcotest.test_case "ebit path (eq 2)" `Quick test_ebit_path;
      Alcotest.test_case "communication energy" `Quick test_communication_energy;
      Alcotest.test_case "static (eq 5/9/10)" `Quick test_static;
      Alcotest.test_case "static share" `Quick test_static_share;
      Alcotest.test_case "params defaults" `Quick test_params_defaults;
      Alcotest.test_case "params validation" `Quick test_params_validation;
      Alcotest.test_case "flits of bits" `Quick test_flits_of_bits;
      Alcotest.test_case "delay equations (6-8)" `Quick test_delay_equations;
    ] )
