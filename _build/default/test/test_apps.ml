module Cdcg = Nocmap_model.Cdcg
module Cwg = Nocmap_model.Cwg
module Topo = Nocmap_graph.Topo
module Apps = Nocmap_apps

let test_catalog_well_formed () =
  Alcotest.(check int) "eight embedded applications" 8 (List.length Apps.Catalog.all);
  List.iter
    (fun (name, cdcg) ->
      Alcotest.(check bool) (name ^ " acyclic") true
        (Topo.is_dag (Cdcg.to_digraph cdcg));
      Alcotest.(check bool) (name ^ " has packets") true (Cdcg.packet_count cdcg > 0);
      Alcotest.(check bool) (name ^ " has deps") true (Cdcg.dependence_count cdcg > 0))
    Apps.Catalog.all

let test_catalog_find () =
  Alcotest.(check bool) "find hit" true (Apps.Catalog.find "fft8" <> None);
  Alcotest.(check bool) "find miss" true (Apps.Catalog.find "nope" = None)

let test_romberg_shape () =
  let cdcg = Apps.Romberg.make ~workers:4 ~rounds:4 () in
  Alcotest.(check int) "cores = workers + master" 5 (Cdcg.core_count cdcg);
  Alcotest.(check int) "packets = 2 * workers * rounds" 32 (Cdcg.packet_count cdcg);
  (* Every worker talks to the master both ways; no worker-to-worker
     communication. *)
  let cwg = Cwg.of_cdcg cdcg in
  Alcotest.(check int) "star topology" 8 (Cwg.ncc cwg);
  List.iter
    (fun (s, d, _) ->
      Alcotest.(check bool) "all pairs include the master" true (s = 0 || d = 0))
    (Cwg.communications cwg)

let test_romberg_round_synchronization () =
  (* Round k tasks must depend on every round k-1 estimate: the first
     task of round 2 (packet index 2w) has w predecessors. *)
  let workers = 3 in
  let cdcg = Apps.Romberg.make ~workers ~rounds:2 () in
  let second_round_task = 2 * workers in
  Alcotest.(check int) "full synchronization" workers
    (List.length (Cdcg.predecessors cdcg second_round_task))

let test_romberg_validation () =
  Alcotest.(check bool) "no workers rejected" true
    (match Apps.Romberg.make ~workers:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_fft_shape () =
  let cdcg = Apps.Fft.make ~points:8 () in
  (* src + 4 butterfly units + sink *)
  Alcotest.(check int) "six cores" 6 (Cdcg.core_count cdcg);
  Alcotest.(check bool) "scatter present" true
    (Cdcg.packets_from cdcg ~src:0 ~dst:1 <> []);
  (* All four units send results to the sink. *)
  let sink = Cdcg.core_count cdcg - 1 in
  let gather_count =
    List.length
      (List.concat_map
         (fun u -> Cdcg.packets_from cdcg ~src:u ~dst:sink)
         [ 1; 2; 3; 4 ])
  in
  Alcotest.(check int) "four gathers" 4 gather_count

let test_fft_stage_traffic () =
  (* An 8-point FFT has three stages; the shuffle between stages forces
     inter-unit packets. *)
  let cdcg = Apps.Fft.make ~points:8 () in
  let inter_unit =
    Array.to_list cdcg.Cdcg.packets
    |> List.filter (fun (p : Cdcg.packet) ->
           p.Cdcg.src >= 1 && p.Cdcg.src <= 4 && p.Cdcg.dst >= 1 && p.Cdcg.dst <= 4)
  in
  Alcotest.(check bool) "inter-unit shuffles exist" true (List.length inter_unit > 0)

let test_fft_validation () =
  Alcotest.(check bool) "non power of two" true
    (match Apps.Fft.make ~points:6 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_objrec_shape () =
  let cdcg = Apps.Object_recognition.make ~frames:2 ~extractors:3 () in
  (* cam, pre, seg, 3 extractors, cls, sink *)
  Alcotest.(check int) "cores" 8 (Cdcg.core_count cdcg);
  (* per frame: capture + cleaned + 3 regions + 3 descriptors + verdict = 9 *)
  Alcotest.(check int) "packets" 18 (Cdcg.packet_count cdcg)

let test_objrec_pipeline_serialization () =
  let cdcg = Apps.Object_recognition.make ~frames:3 ~extractors:2 () in
  (* The camera emits one capture per frame; captures are chained so the
     second capture depends on the first. *)
  let captures = Cdcg.packets_from cdcg ~src:0 ~dst:1 in
  (match captures with
  | first :: second :: _ ->
    Alcotest.(check (list int)) "camera serialized" [ first ]
      (Cdcg.predecessors cdcg second)
  | _ -> Alcotest.fail "expected at least two captures")

let test_imgenc_shape () =
  let cdcg = Apps.Image_encoder.make ~blocks:4 () in
  Alcotest.(check int) "cores" 6 (Cdcg.core_count cdcg);
  (* five pipeline hops per block *)
  Alcotest.(check int) "packets" 20 (Cdcg.packet_count cdcg);
  (* volumes shrink along the chain: store receives 1/8 of block bits *)
  let last_hop = Cdcg.packets_from cdcg ~src:4 ~dst:5 in
  List.iter
    (fun i ->
      Alcotest.(check int) "compressed output" 64 cdcg.Cdcg.packets.(i).Cdcg.bits)
    last_hop

let test_imgenc_validation () =
  Alcotest.(check bool) "tiny blocks rejected" true
    (match Apps.Image_encoder.make ~block_bits:8 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_fig1_matches_paper () =
  Alcotest.(check int) "six packets" 6 (Cdcg.packet_count Apps.Fig1.cdcg);
  Alcotest.(check int) "four cores" 4 (Cdcg.core_count Apps.Fig1.cdcg);
  Alcotest.(check int) "120 bits total" 120 (Cdcg.total_bits Apps.Fig1.cdcg)

let suite =
  ( "apps",
    [
      Alcotest.test_case "catalog well-formed" `Quick test_catalog_well_formed;
      Alcotest.test_case "catalog find" `Quick test_catalog_find;
      Alcotest.test_case "romberg shape" `Quick test_romberg_shape;
      Alcotest.test_case "romberg synchronization" `Quick
        test_romberg_round_synchronization;
      Alcotest.test_case "romberg validation" `Quick test_romberg_validation;
      Alcotest.test_case "fft shape" `Quick test_fft_shape;
      Alcotest.test_case "fft stage traffic" `Quick test_fft_stage_traffic;
      Alcotest.test_case "fft validation" `Quick test_fft_validation;
      Alcotest.test_case "objrec shape" `Quick test_objrec_shape;
      Alcotest.test_case "objrec serialization" `Quick test_objrec_pipeline_serialization;
      Alcotest.test_case "imgenc shape" `Quick test_imgenc_shape;
      Alcotest.test_case "imgenc validation" `Quick test_imgenc_validation;
      Alcotest.test_case "fig1 matches the paper" `Quick test_fig1_matches_paper;
    ] )
