module Mesh = Nocmap_noc.Mesh
module Crg = Nocmap_noc.Crg
module Cwg = Nocmap_model.Cwg
module Technology = Nocmap_energy.Technology
module Mapping = Nocmap_mapping
module Rng = Nocmap_util.Rng
module Generator = Nocmap_tgff.Generator
module Fig1 = Nocmap_apps.Fig1

let tech = Technology.t035

let test_initial_cost_matches () =
  let crg = Crg.create (Mesh.create ~cols:2 ~rows:2) in
  let inc =
    Mapping.Cost_cwm_incremental.create ~tech ~crg ~cwg:Fig1.cwg
      ~placement:Fig1.mapping_c
  in
  Alcotest.(check (float 1e-20)) "same as full evaluation"
    (Mapping.Cost_cwm.dynamic_energy ~tech ~crg ~cwg:Fig1.cwg Fig1.mapping_c)
    (Mapping.Cost_cwm_incremental.cost inc)

let test_delta_matches_full_recompute () =
  let crg = Crg.create (Mesh.create ~cols:3 ~rows:3) in
  let rng = Rng.create ~seed:9 in
  let spec = Generator.default_spec ~name:"inc" ~cores:7 ~packets:30 ~total_bits:9_000 in
  let cdcg = Generator.generate (Rng.split rng) spec in
  let cwg = Cwg.of_cdcg cdcg in
  let placement = Mapping.Placement.random (Rng.split rng) ~cores:7 ~tiles:9 in
  let inc = Mapping.Cost_cwm_incremental.create ~tech ~crg ~cwg ~placement in
  for _ = 1 to 200 do
    let core = Rng.int rng 7 in
    let tile = Rng.int rng 9 in
    let before = Mapping.Cost_cwm_incremental.cost inc in
    let delta = Mapping.Cost_cwm_incremental.move_delta inc ~core ~tile in
    Mapping.Cost_cwm_incremental.apply_move inc ~core ~tile;
    let current = Mapping.Cost_cwm_incremental.placement inc in
    let full = Mapping.Cost_cwm.dynamic_energy ~tech ~crg ~cwg current in
    Alcotest.(check bool) "placement stays valid" true
      (Mapping.Placement.is_valid ~tiles:9 current);
    Alcotest.(check (float 1e-18)) "incremental total = full recompute" full
      (Mapping.Cost_cwm_incremental.cost inc);
    Alcotest.(check (float 1e-18)) "delta consistent" (before +. delta)
      (Mapping.Cost_cwm_incremental.cost inc)
  done

let test_noop_move () =
  let crg = Crg.create (Mesh.create ~cols:2 ~rows:2) in
  let inc =
    Mapping.Cost_cwm_incremental.create ~tech ~crg ~cwg:Fig1.cwg
      ~placement:Fig1.mapping_c
  in
  Alcotest.(check (float 1e-20)) "zero delta to own tile" 0.0
    (Mapping.Cost_cwm_incremental.move_delta inc ~core:0
       ~tile:Fig1.mapping_c.(0))

let test_move_to_free_tile () =
  (* 5 cores on 6 tiles: moving to the free tile must stay consistent. *)
  let crg = Crg.create (Mesh.create ~cols:3 ~rows:2) in
  let rng = Rng.create ~seed:4 in
  let spec = Generator.default_spec ~name:"free" ~cores:5 ~packets:20 ~total_bits:4_000 in
  let cdcg = Generator.generate (Rng.split rng) spec in
  let cwg = Cwg.of_cdcg cdcg in
  let placement = [| 0; 1; 2; 3; 4 |] in
  let inc = Mapping.Cost_cwm_incremental.create ~tech ~crg ~cwg ~placement in
  Mapping.Cost_cwm_incremental.apply_move inc ~core:2 ~tile:5;
  let current = Mapping.Cost_cwm_incremental.placement inc in
  Alcotest.(check int) "core moved" 5 current.(2);
  Alcotest.(check (float 1e-18)) "total consistent"
    (Mapping.Cost_cwm.dynamic_energy ~tech ~crg ~cwg current)
    (Mapping.Cost_cwm_incremental.cost inc);
  (* And back into the vacated tile chain: swap with an occupant. *)
  Mapping.Cost_cwm_incremental.apply_move inc ~core:0 ~tile:5;
  let current = Mapping.Cost_cwm_incremental.placement inc in
  Alcotest.(check int) "swap happened" 5 current.(0);
  Alcotest.(check int) "occupant displaced" 0 current.(2);
  Alcotest.(check (float 1e-18)) "total still consistent"
    (Mapping.Cost_cwm.dynamic_energy ~tech ~crg ~cwg current)
    (Mapping.Cost_cwm_incremental.cost inc)

let test_invalid_inputs () =
  let crg = Crg.create (Mesh.create ~cols:2 ~rows:2) in
  Alcotest.(check bool) "invalid placement rejected" true
    (match
       Mapping.Cost_cwm_incremental.create ~tech ~crg ~cwg:Fig1.cwg
         ~placement:[| 0; 0; 1; 2 |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let inc =
    Mapping.Cost_cwm_incremental.create ~tech ~crg ~cwg:Fig1.cwg
      ~placement:Fig1.mapping_c
  in
  Alcotest.(check bool) "core range" true
    (match Mapping.Cost_cwm_incremental.move_delta inc ~core:9 ~tile:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  ( "cwm-incremental",
    [
      Alcotest.test_case "initial cost" `Quick test_initial_cost_matches;
      Alcotest.test_case "deltas match full recompute" `Quick
        test_delta_matches_full_recompute;
      Alcotest.test_case "no-op move" `Quick test_noop_move;
      Alcotest.test_case "move to free tile" `Quick test_move_to_free_tile;
      Alcotest.test_case "invalid inputs" `Quick test_invalid_inputs;
    ] )
