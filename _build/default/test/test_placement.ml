module Placement = Nocmap_mapping.Placement
module Rng = Nocmap_util.Rng

let test_validate () =
  Alcotest.(check bool) "valid" true (Placement.is_valid ~tiles:4 [| 0; 2; 3 |]);
  Alcotest.(check bool) "duplicate tile" false (Placement.is_valid ~tiles:4 [| 0; 0 |]);
  Alcotest.(check bool) "out of range" false (Placement.is_valid ~tiles:4 [| 0; 4 |]);
  Alcotest.(check bool) "too many cores" false (Placement.is_valid ~tiles:2 [| 0; 1; 2 |])

let test_validate_message () =
  match Placement.validate ~tiles:4 [| 1; 1 |] with
  | Ok () -> Alcotest.fail "expected error"
  | Error msg -> Test_util.check_contains ~msg:"names the tile" ~needle:"tile 1" msg

let test_identity () =
  Alcotest.(check (array int)) "identity" [| 0; 1; 2 |] (Placement.identity ~cores:3)

let test_swap_cores () =
  let p = Placement.swap_cores [| 5; 7; 9 |] 0 2 in
  Alcotest.(check (array int)) "swapped" [| 9; 7; 5 |] p

let test_move_to_free_tile () =
  let p = Placement.move_to_tile [| 0; 1 |] ~core:0 ~tile:3 in
  Alcotest.(check (array int)) "moved" [| 3; 1 |] p

let test_move_to_occupied_tile () =
  let p = Placement.move_to_tile [| 0; 1 |] ~core:0 ~tile:1 in
  Alcotest.(check (array int)) "swapped with occupant" [| 1; 0 |] p

let test_occupant () =
  let inv = Placement.occupant [| 2; 0 |] ~tiles:3 in
  Alcotest.(check (array (option int))) "inverse" [| Some 1; None; Some 0 |] inv

let test_to_string () =
  Alcotest.(check string) "rendering" "A@2 B@0"
    (Placement.to_string ~core_names:[| "A"; "B" |] [| 2; 0 |])

let test_random_more_cores_than_tiles () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "refused"
    (Invalid_argument "Placement.random: more cores than tiles") (fun () ->
      ignore (Placement.random rng ~cores:5 ~tiles:4))

let prop_random_valid =
  QCheck2.Test.make ~name:"random placements are valid" ~count:300
    QCheck2.Gen.(triple (int_range 0 100000) (int_range 1 20) (int_range 0 10))
    (fun (seed, cores, slack) ->
      let tiles = cores + slack in
      let rng = Rng.create ~seed in
      Placement.is_valid ~tiles (Placement.random rng ~cores ~tiles))

let prop_neighbor_valid_and_different =
  QCheck2.Test.make ~name:"random neighbors are valid and differ" ~count:300
    QCheck2.Gen.(triple (int_range 0 100000) (int_range 1 15) (int_range 1 10))
    (fun (seed, cores, slack) ->
      let tiles = cores + slack in
      let rng = Rng.create ~seed in
      let p = Placement.random rng ~cores ~tiles in
      let q = Placement.random_neighbor rng ~tiles p in
      Placement.is_valid ~tiles q && q <> p)

let suite =
  ( "placement",
    [
      Alcotest.test_case "validate" `Quick test_validate;
      Alcotest.test_case "validate message" `Quick test_validate_message;
      Alcotest.test_case "identity" `Quick test_identity;
      Alcotest.test_case "swap cores" `Quick test_swap_cores;
      Alcotest.test_case "move to free tile" `Quick test_move_to_free_tile;
      Alcotest.test_case "move to occupied tile" `Quick test_move_to_occupied_tile;
      Alcotest.test_case "occupant" `Quick test_occupant;
      Alcotest.test_case "to_string" `Quick test_to_string;
      Alcotest.test_case "too many cores" `Quick test_random_more_cores_than_tiles;
      QCheck_alcotest.to_alcotest prop_random_valid;
      QCheck_alcotest.to_alcotest prop_neighbor_valid_and_different;
    ] )
