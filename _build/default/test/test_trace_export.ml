module Mesh = Nocmap_noc.Mesh
module Crg = Nocmap_noc.Crg
module Noc_params = Nocmap_energy.Noc_params
module Wormhole = Nocmap_sim.Wormhole
module Trace_export = Nocmap_sim.Trace_export
module Fig1 = Nocmap_apps.Fig1

let crg = Crg.create (Mesh.create ~cols:2 ~rows:2)

let trace () =
  Wormhole.run ~params:Noc_params.paper_example ~crg ~placement:Fig1.mapping_c
    Fig1.cdcg

let lines s = List.filter (fun l -> l <> "") (String.split_on_char '\n' s)

let test_packets_csv () =
  let csv = Trace_export.packets_csv ~cdcg:Fig1.cdcg (trace ()) in
  let rows = lines csv in
  Alcotest.(check int) "header + 6 packets" 7 (List.length rows);
  (match rows with
  | header :: _ ->
    Alcotest.(check string) "header"
      "label,src,dst,bits,flits,ready,sent,delivered,latency,wait_cycles" header
  | [] -> Alcotest.fail "empty csv");
  Test_util.check_contains ~msg:"pAF1 row with its contention"
    ~needle:"pAF1,A,F,15,15,36,42,73,31,7" csv

let test_link_loads_csv () =
  let csv = Trace_export.link_loads_csv ~crg (trace ()) in
  let rows = lines csv in
  (* header + 8 physical links of a 2x2 mesh *)
  Alcotest.(check int) "header + links" 9 (List.length rows);
  Test_util.check_contains ~msg:"hotspot row" ~needle:"L(0->2),0,2,57," csv

let test_save () =
  let path = Filename.temp_file "nocmap" ".csv" in
  Trace_export.save ~path "a,b\n1,2\n";
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "written" "a,b" first

let suite =
  ( "trace-export",
    [
      Alcotest.test_case "packets csv" `Quick test_packets_csv;
      Alcotest.test_case "link loads csv" `Quick test_link_loads_csv;
      Alcotest.test_case "save" `Quick test_save;
    ] )
