module Mesh = Nocmap_noc.Mesh
module Crg = Nocmap_noc.Crg
module Routing = Nocmap_noc.Routing
module Link = Nocmap_noc.Link
module Digraph = Nocmap_graph.Digraph

let test_paths_match_routing () =
  let mesh = Mesh.create ~cols:3 ~rows:4 in
  let crg = Crg.create mesh in
  for src = 0 to 11 do
    for dst = 0 to 11 do
      let path = Crg.path crg ~src ~dst in
      Alcotest.(check (list int))
        (Printf.sprintf "path %d->%d" src dst)
        (Routing.router_path mesh Routing.Xy ~src ~dst)
        (Array.to_list path.Crg.routers);
      Alcotest.(check int)
        (Printf.sprintf "links %d->%d" src dst)
        (Array.length path.Crg.routers - 1)
        (Array.length path.Crg.links)
    done
  done

let test_router_count () =
  let crg = Crg.create (Mesh.create ~cols:3 ~rows:3) in
  Alcotest.(check int) "corner to corner" 5 (Crg.router_count_on_path crg ~src:0 ~dst:8);
  Alcotest.(check int) "self" 1 (Crg.router_count_on_path crg ~src:4 ~dst:4)

let test_yx_routing_option () =
  let mesh = Mesh.create ~cols:3 ~rows:3 in
  let crg = Crg.create ~routing:Routing.Yx mesh in
  Alcotest.(check bool) "routing recorded" true (Crg.routing crg = Routing.Yx);
  let path = Crg.path crg ~src:0 ~dst:8 in
  Alcotest.(check (list int)) "yx path" [ 0; 3; 6; 7; 8 ] (Array.to_list path.Crg.routers)

let test_out_of_range () =
  let crg = Crg.create (Mesh.create ~cols:2 ~rows:2) in
  Alcotest.check_raises "src range" (Invalid_argument "Crg.path: tile out of range")
    (fun () -> ignore (Crg.path crg ~src:4 ~dst:0))

let test_to_digraph () =
  let mesh = Mesh.create ~cols:2 ~rows:2 in
  let g = Crg.to_digraph (Crg.create mesh) in
  Alcotest.(check int) "vertices" 4 (Digraph.vertex_count g);
  Alcotest.(check int) "edges = physical links" (List.length (Link.all mesh))
    (Digraph.edge_count g);
  Alcotest.(check bool) "adjacency respected" true (Digraph.mem_edge g ~src:0 ~dst:1);
  Alcotest.(check bool) "no diagonal" false (Digraph.mem_edge g ~src:0 ~dst:3)

let suite =
  ( "crg",
    [
      Alcotest.test_case "paths match routing" `Quick test_paths_match_routing;
      Alcotest.test_case "router count" `Quick test_router_count;
      Alcotest.test_case "yx option" `Quick test_yx_routing_option;
      Alcotest.test_case "out of range" `Quick test_out_of_range;
      Alcotest.test_case "to_digraph" `Quick test_to_digraph;
    ] )
