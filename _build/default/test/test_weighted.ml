module Mesh = Nocmap_noc.Mesh
module Crg = Nocmap_noc.Crg
module Noc_params = Nocmap_energy.Noc_params
module Technology = Nocmap_energy.Technology
module Mapping = Nocmap_mapping
module Rng = Nocmap_util.Rng
module Fig1 = Nocmap_apps.Fig1

let crg = Crg.create (Mesh.create ~cols:2 ~rows:2)
let params = Noc_params.paper_example
let tech = Technology.t007

let make alpha =
  Mapping.Weighted.make ~tech ~params ~crg ~cdcg:Fig1.cdcg ~alpha
    ~reference:Fig1.mapping_c

let test_reference_normalization () =
  (* At the reference placement both normalized terms are 1, so the
     cost is 1 for every alpha. *)
  List.iter
    (fun alpha ->
      Alcotest.(check (float 1e-9)) "cost 1 at the reference" 1.0
        ((make alpha).Mapping.Objective.cost_fn Fig1.mapping_c))
    [ 0.0; 0.3; 1.0 ]

let test_alpha_extremes_order_mappings () =
  (* Pure time (alpha 0): mapping (d) (90 ns) beats (c) (100 ns). *)
  let time = make 0.0 in
  Alcotest.(check bool) "time objective prefers (d)" true
    (time.Mapping.Objective.cost_fn Fig1.mapping_d
    < time.Mapping.Objective.cost_fn Fig1.mapping_c)

let test_alpha_validation () =
  Alcotest.(check bool) "alpha out of range" true
    (match make 1.5 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_pareto_sweep () =
  let rng = Rng.create ~seed:12 in
  let points =
    Mapping.Weighted.pareto_sweep ~rng
      ~config:(Mapping.Annealing.quick_config ~tiles:4)
      ~tech ~params ~crg ~cdcg:Fig1.cdcg
      ~alphas:[ 0.0; 0.5; 1.0 ]
  in
  Alcotest.(check int) "three points" 3 (List.length points);
  List.iter
    (fun (alpha, e) ->
      Alcotest.(check bool)
        (Printf.sprintf "alpha %.1f sane" alpha)
        true
        (e.Mapping.Cost_cdcm.total > 0.0 && e.Mapping.Cost_cdcm.texec_ns > 0.0))
    points

let suite =
  ( "weighted",
    [
      Alcotest.test_case "reference normalization" `Quick test_reference_normalization;
      Alcotest.test_case "alpha extremes" `Quick test_alpha_extremes_order_mappings;
      Alcotest.test_case "alpha validation" `Quick test_alpha_validation;
      Alcotest.test_case "pareto sweep" `Quick test_pareto_sweep;
    ] )
