module Interval = Nocmap_util.Interval

let mk lo hi = Interval.make ~lo ~hi

let test_make_invalid () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make: lo > hi")
    (fun () -> ignore (mk 5 4))

let test_length () =
  Alcotest.(check int) "singleton" 1 (Interval.length (mk 3 3));
  Alcotest.(check int) "span" 11 (Interval.length (mk 0 10))

let test_overlaps () =
  Alcotest.(check bool) "disjoint" false (Interval.overlaps (mk 0 4) (mk 5 9));
  Alcotest.(check bool) "touching endpoint" true (Interval.overlaps (mk 0 5) (mk 5 9));
  Alcotest.(check bool) "nested" true (Interval.overlaps (mk 0 10) (mk 3 4))

let test_contains () =
  Alcotest.(check bool) "inside" true (Interval.contains (mk 2 6) 4);
  Alcotest.(check bool) "boundary" true (Interval.contains (mk 2 6) 6);
  Alcotest.(check bool) "outside" false (Interval.contains (mk 2 6) 7)

let test_union_span () =
  let u = Interval.union_span (mk 1 3) (mk 7 9) in
  Alcotest.(check int) "lo" 1 u.Interval.lo;
  Alcotest.(check int) "hi" 9 u.Interval.hi

let test_to_string () =
  Alcotest.(check string) "paper notation" "[46,69]" (Interval.to_string (mk 46 69))

let test_disjoint_sorted () =
  Alcotest.(check bool) "disjoint list" true
    (Interval.disjoint_sorted [ mk 5 9; mk 0 4; mk 10 12 ]);
  Alcotest.(check bool) "overlapping list" false
    (Interval.disjoint_sorted [ mk 0 5; mk 5 9 ]);
  Alcotest.(check bool) "empty" true (Interval.disjoint_sorted [])

let prop_overlap_symmetric =
  let gen =
    QCheck2.Gen.(
      let iv = map2 (fun a len -> mk a (a + len)) (int_range 0 100) (int_range 0 20) in
      pair iv iv)
  in
  QCheck2.Test.make ~name:"overlap is symmetric" ~count:300 gen (fun (a, b) ->
      Interval.overlaps a b = Interval.overlaps b a)

let suite =
  ( "interval",
    [
      Alcotest.test_case "make invalid" `Quick test_make_invalid;
      Alcotest.test_case "length" `Quick test_length;
      Alcotest.test_case "overlaps" `Quick test_overlaps;
      Alcotest.test_case "contains" `Quick test_contains;
      Alcotest.test_case "union span" `Quick test_union_span;
      Alcotest.test_case "to_string" `Quick test_to_string;
      Alcotest.test_case "disjoint_sorted" `Quick test_disjoint_sorted;
      QCheck_alcotest.to_alcotest prop_overlap_symmetric;
    ] )
