module Suite = Nocmap_tgff.Suite
module Mesh = Nocmap_noc.Mesh
module Cdcg = Nocmap_model.Cdcg

(* The published Table 1 statistics (with the 3x4/14-core row corrected
   to 12 cores — a 3x4 NoC has 12 tiles; see EXPERIMENTS.md). *)
let expected =
  [
    ("3x2", 5, 43, 78_817); ("3x2", 6, 17, 174); ("3x2", 6, 43, 49_003);
    ("2x4", 5, 16, 1_600); ("2x4", 7, 33, 23_235); ("2x4", 8, 18, 5_930);
    ("3x3", 7, 16, 1_600); ("3x3", 9, 18, 1_860); ("3x3", 9, 32, 43_120);
    ("2x5", 8, 24, 2_215); ("2x5", 9, 51, 23_244); ("2x5", 10, 22, 322_221);
    ("3x4", 10, 15, 3_100); ("3x4", 12, 25, 2_578_920); ("3x4", 12, 88, 115_778);
    ("8x8", 62, 344, 9_799_200);
    ("10x10", 93, 415, 562_565_990);
    ("12x10", 99, 446, 680_006_120);
  ]

let test_row_count () = Alcotest.(check int) "18 applications" 18 (List.length Suite.rows)

let test_features_match_paper () =
  let instances = Suite.instances ~seed:2005 in
  List.iter2
    (fun (mesh, cdcg) (noc, cores, packets, bits) ->
      Alcotest.(check string) "NoC size" noc (Mesh.to_string mesh);
      Alcotest.(check int) (noc ^ " cores") cores (Cdcg.core_count cdcg);
      Alcotest.(check int) (noc ^ " packets") packets (Cdcg.packet_count cdcg);
      Alcotest.(check int) (noc ^ " bits") bits (Cdcg.total_bits cdcg))
    instances expected

let test_apps_fit_their_noc () =
  List.iter
    (fun (mesh, cdcg) ->
      Alcotest.(check bool)
        (Mesh.to_string mesh ^ " fits")
        true
        (Cdcg.core_count cdcg <= Mesh.tile_count mesh))
    (Suite.instances ~seed:7)

let test_deterministic () =
  let a = Suite.instances ~seed:3 and b = Suite.instances ~seed:3 in
  List.iter2
    (fun (_, (x : Cdcg.t)) (_, (y : Cdcg.t)) ->
      Alcotest.(check bool) "same instance" true
        (x.Cdcg.packets = y.Cdcg.packets && x.Cdcg.deps = y.Cdcg.deps))
    a b

let test_size_groups () =
  Alcotest.(check (list string)) "small sizes"
    [ "3x2"; "2x4"; "3x3"; "2x5"; "3x4" ]
    (List.map Mesh.to_string Suite.small_sizes);
  Alcotest.(check (list string)) "large sizes" [ "8x8"; "10x10"; "12x10" ]
    (List.map Mesh.to_string Suite.large_sizes)

let test_table1_render () =
  let rendered = Nocmap.Table1.render ~seed:2005 in
  Test_util.check_contains ~msg:"title" ~needle:"Table 1" rendered;
  Test_util.check_contains ~msg:"3x2 row" ~needle:"3x2" rendered;
  Test_util.check_contains ~msg:"grouped volume" ~needle:"680,006,120" rendered;
  Test_util.check_contains ~msg:"packet counts" ~needle:"43; 17; 43" rendered

let suite =
  ( "suite-table1",
    [
      Alcotest.test_case "row count" `Quick test_row_count;
      Alcotest.test_case "features match the paper" `Quick test_features_match_paper;
      Alcotest.test_case "apps fit their NoC" `Quick test_apps_fit_their_noc;
      Alcotest.test_case "deterministic" `Quick test_deterministic;
      Alcotest.test_case "size groups" `Quick test_size_groups;
      Alcotest.test_case "table 1 rendering" `Quick test_table1_render;
    ] )
