(* Bounded-buffer backpressure: a three-packet cascade on a 1x4 row.

   P0 (x at tile 2 -> y at tile 3) hogs the last link; P1 (s at tile 0 ->
   y) stalls behind it at router 2; with buffers smaller than P1, P1
   keeps holding link 1->2, which delays the unrelated P2 (z at tile 1 ->
   x at tile 2).  With unbounded buffers P2 never waits. *)

module Mesh = Nocmap_noc.Mesh
module Crg = Nocmap_noc.Crg
module Cdcg = Nocmap_model.Cdcg
module Noc_params = Nocmap_energy.Noc_params
module Wormhole = Nocmap_sim.Wormhole
module Trace = Nocmap_sim.Trace

let cdcg =
  Cdcg.create_exn ~name:"cascade" ~core_names:[| "s"; "z"; "x"; "y" |]
    ~packets:
      [|
        { Cdcg.src = 2; dst = 3; compute = 0; bits = 12; label = "P0" };
        { Cdcg.src = 0; dst = 3; compute = 0; bits = 6; label = "P1" };
        { Cdcg.src = 1; dst = 2; compute = 11; bits = 4; label = "P2" };
      |]
    ~deps:[]

let crg = Crg.create (Mesh.create ~cols:4 ~rows:1)
let placement = [| 0; 1; 2; 3 |]

let run buffering =
  Wormhole.run ~params:(Noc_params.make ~buffering ()) ~crg ~placement cdcg

let delivered t i = t.Trace.packets.(i).Trace.delivered

let test_unbounded_baseline () =
  let t = run Noc_params.Unbounded in
  (* P1 (K = 4 routers, 6 flits) would deliver at 1 + 4*(2+1) + 6 - 1
     = 18 uncontended; it waits 8 cycles at router 2 for P0's link
     2->3 (service [1,14], free at 15), so it delivers at 26.  P2 is
     never blocked: sent at 11, K=2, n=4 -> 11 + 2*3 + 4 = 21. *)
  Alcotest.(check int) "P0" 18 (delivered t 0);
  Alcotest.(check int) "P1 stalls behind P0" 26 (delivered t 1);
  Alcotest.(check int) "P2 unaffected" 21 (delivered t 2);
  Alcotest.(check int) "texec" 26 t.Trace.texec_cycles

let test_large_buffers_match_unbounded () =
  let unbounded = run Noc_params.Unbounded in
  let large = run (Noc_params.Bounded 64) in
  Alcotest.(check int) "texec equal" unbounded.Trace.texec_cycles
    large.Trace.texec_cycles;
  Alcotest.(check int) "P2 equal" (delivered unbounded 2) (delivered large 2)

let test_small_buffers_cascade () =
  let unbounded = run Noc_params.Unbounded in
  let tight = run (Noc_params.Bounded 2) in
  (* The overflow of stalled P1 keeps holding link 1->2, so P2 (which
     shares only that link with P1) is delivered strictly later. *)
  Alcotest.(check bool) "P2 delayed by backpressure" true
    (delivered tight 2 > delivered unbounded 2);
  Alcotest.(check bool) "texec grows" true
    (tight.Trace.texec_cycles > unbounded.Trace.texec_cycles)

let test_monotone_in_capacity () =
  let texec c = (run (Noc_params.Bounded c)).Trace.texec_cycles in
  let unbounded = (run Noc_params.Unbounded).Trace.texec_cycles in
  let t2 = texec 2 and t4 = texec 4 and t16 = texec 16 in
  Alcotest.(check bool) "2 >= 4 >= 16 >= unbounded" true
    (t2 >= t4 && t4 >= t16 && t16 >= unbounded)

let suite =
  ( "backpressure",
    [
      Alcotest.test_case "unbounded baseline" `Quick test_unbounded_baseline;
      Alcotest.test_case "large buffers = unbounded" `Quick
        test_large_buffers_match_unbounded;
      Alcotest.test_case "small buffers cascade" `Quick test_small_buffers_cascade;
      Alcotest.test_case "monotone in capacity" `Quick test_monotone_in_capacity;
    ] )
