module Rng = Nocmap_util.Rng

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds give different output" false
    (Rng.bits64 a = Rng.bits64 b)

let test_copy () =
  let a = Rng.create ~seed:9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_split_independent () =
  let parent = Rng.create ~seed:5 in
  let child = Rng.split parent in
  Alcotest.(check bool) "child differs from parent" false
    (Rng.bits64 parent = Rng.bits64 child)

let test_int_in_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 10 20 in
    Alcotest.(check bool) "in [10,20]" true (v >= 10 && v <= 20)
  done

let test_int_covers_range () =
  let rng = Rng.create ~seed:4 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all 5 values hit" true (Array.for_all Fun.id seen)

let test_shuffle_is_permutation () =
  let rng = Rng.create ~seed:6 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Rng.create ~seed:7 in
  let sample = Rng.sample_without_replacement rng 10 (Array.init 30 Fun.id) in
  Alcotest.(check int) "size" 10 (Array.length sample);
  let distinct = List.sort_uniq compare (Array.to_list sample) in
  Alcotest.(check int) "distinct" 10 (List.length distinct)

let test_choose_list_singleton () =
  let rng = Rng.create ~seed:8 in
  Alcotest.(check int) "singleton" 7 (Rng.choose_list rng [ 7 ])

let test_choose_list_empty () =
  let rng = Rng.create ~seed:8 in
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.choose_list: empty list")
    (fun () -> ignore (Rng.choose_list rng []))

let test_float_bounds () =
  let rng = Rng.create ~seed:10 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let prop_int_bound =
  QCheck2.Test.make ~name:"Rng.int stays below its bound" ~count:500
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 0 1_000_000))
    (fun (bound, seed) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let suite =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
      Alcotest.test_case "copy" `Quick test_copy;
      Alcotest.test_case "split independent" `Quick test_split_independent;
      Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
      Alcotest.test_case "int covers range" `Quick test_int_covers_range;
      Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
      Alcotest.test_case "sample without replacement" `Quick
        test_sample_without_replacement;
      Alcotest.test_case "choose_list singleton" `Quick test_choose_list_singleton;
      Alcotest.test_case "choose_list empty" `Quick test_choose_list_empty;
      Alcotest.test_case "float bounds" `Quick test_float_bounds;
      QCheck_alcotest.to_alcotest prop_int_bound;
    ] )
