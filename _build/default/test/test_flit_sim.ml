(* Cross-validation: the cycle-accurate flit-level simulator must agree
   exactly with the event-driven wormhole simulator under the shared
   model assumptions (unbounded buffers, tl = 1, FCFS-by-(arrival,
   packet) arbitration). *)

module Mesh = Nocmap_noc.Mesh
module Crg = Nocmap_noc.Crg
module Noc_params = Nocmap_energy.Noc_params
module Wormhole = Nocmap_sim.Wormhole
module Flit_sim = Nocmap_sim.Flit_sim
module Trace = Nocmap_sim.Trace
module Rng = Nocmap_util.Rng
module Placement = Nocmap_mapping.Placement
module Generator = Nocmap_tgff.Generator
module Fig1 = Nocmap_apps.Fig1

let params = Noc_params.paper_example

let test_fig1_agreement () =
  let crg = Crg.create (Mesh.create ~cols:2 ~rows:2) in
  let check placement expected =
    let flit = Flit_sim.run ~params ~crg ~placement Fig1.cdcg in
    let worm = Wormhole.run ~trace:false ~params ~crg ~placement Fig1.cdcg in
    Alcotest.(check int) "matches the paper" expected flit.Flit_sim.texec_cycles;
    Alcotest.(check int) "matches wormhole" worm.Trace.texec_cycles
      flit.Flit_sim.texec_cycles;
    Array.iteri
      (fun i (pt : Trace.packet_trace) ->
        Alcotest.(check int)
          (Printf.sprintf "packet %d delivery" i)
          pt.Trace.delivered
          flit.Flit_sim.delivered.(i))
      worm.Trace.packets
  in
  check Fig1.mapping_c 100;
  check Fig1.mapping_d 90

let gen_scenario =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let* cols = int_range 2 4 in
    let* rows = int_range 2 3 in
    let mesh = Mesh.create ~cols ~rows in
    let tiles = Mesh.tile_count mesh in
    let rng = Rng.create ~seed in
    let* cores = int_range 2 (min 7 tiles) in
    let* packets = int_range 1 30 in
    let spec =
      Generator.default_spec ~name:"x" ~cores ~packets ~total_bits:(packets * 40)
    in
    let cdcg = Generator.generate rng spec in
    let placement = Placement.random rng ~cores ~tiles in
    return (mesh, cdcg, placement))

let prop_agreement =
  QCheck2.Test.make ~name:"flit-level and event-driven simulators agree" ~count:120
    gen_scenario (fun (mesh, cdcg, placement) ->
      let crg = Crg.create mesh in
      let flit = Flit_sim.run ~params ~crg ~placement cdcg in
      let worm = Wormhole.run ~trace:false ~params ~crg ~placement cdcg in
      flit.Flit_sim.texec_cycles = worm.Trace.texec_cycles
      && Array.for_all2
           (fun d (pt : Trace.packet_trace) -> d = pt.Trace.delivered)
           flit.Flit_sim.delivered worm.Trace.packets)

let test_rejects_bounded () =
  let crg = Crg.create (Mesh.create ~cols:2 ~rows:2) in
  let bounded = Noc_params.make ~buffering:(Noc_params.Bounded 4) () in
  Alcotest.(check bool) "bounded rejected" true
    (match Flit_sim.run ~params:bounded ~crg ~placement:Fig1.mapping_c Fig1.cdcg with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_rejects_wide_links () =
  let crg = Crg.create (Mesh.create ~cols:2 ~rows:2) in
  let wide = Noc_params.make ~tl:2 () in
  Alcotest.(check bool) "tl <> 1 rejected" true
    (match Flit_sim.run ~params:wide ~crg ~placement:Fig1.mapping_c Fig1.cdcg with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_max_cycles_guard () =
  let crg = Crg.create (Mesh.create ~cols:2 ~rows:2) in
  Alcotest.(check bool) "budget guard" true
    (match
       Flit_sim.run ~params ~crg ~placement:Fig1.mapping_c ~max_cycles:10 Fig1.cdcg
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  ( "flit-sim",
    [
      Alcotest.test_case "fig1 agreement" `Quick test_fig1_agreement;
      QCheck_alcotest.to_alcotest prop_agreement;
      Alcotest.test_case "rejects bounded buffers" `Quick test_rejects_bounded;
      Alcotest.test_case "rejects wide flits" `Quick test_rejects_wide_links;
      Alcotest.test_case "max cycles guard" `Quick test_max_cycles_guard;
    ] )
