module Digraph = Nocmap_graph.Digraph

let test_create () =
  let g = Digraph.create ~n:3 in
  Alcotest.(check int) "vertices" 3 (Digraph.vertex_count g);
  Alcotest.(check int) "edges" 0 (Digraph.edge_count g)

let test_create_negative () =
  Alcotest.check_raises "negative size"
    (Invalid_argument "Digraph.create: negative size") (fun () ->
      ignore (Digraph.create ~n:(-1)))

let test_add_edge_and_adjacency () =
  let g = Digraph.create ~n:4 in
  Digraph.add_edge g ~src:0 ~dst:1 ~label:10;
  Digraph.add_edge g ~src:0 ~dst:2 ~label:20;
  Digraph.add_edge g ~src:3 ~dst:0 ~label:30;
  Alcotest.(check int) "edge count" 3 (Digraph.edge_count g);
  Alcotest.(check (list (pair int int))) "successors in insertion order"
    [ (1, 10); (2, 20) ] (Digraph.successors g 0);
  Alcotest.(check (list (pair int int))) "predecessors" [ (3, 30) ]
    (Digraph.predecessors g 0);
  Alcotest.(check int) "out degree" 2 (Digraph.out_degree g 0);
  Alcotest.(check int) "in degree" 1 (Digraph.in_degree g 0)

let test_out_of_range () =
  let g = Digraph.create ~n:2 in
  Alcotest.check_raises "src out of range"
    (Invalid_argument "Digraph.add_edge: vertex out of range") (fun () ->
      Digraph.add_edge g ~src:5 ~dst:0 ~label:0)

let test_parallel_edges () =
  let g = Digraph.create ~n:2 in
  Digraph.add_edge g ~src:0 ~dst:1 ~label:1;
  Digraph.add_edge g ~src:0 ~dst:1 ~label:2;
  Alcotest.(check int) "both stored" 2 (List.length (Digraph.successors g 0));
  Alcotest.(check int) "first label wins lookup" 1 (Digraph.label g ~src:0 ~dst:1)

let test_mem_and_label () =
  let g = Digraph.create ~n:3 in
  Digraph.add_edge g ~src:1 ~dst:2 ~label:7;
  Alcotest.(check bool) "mem present" true (Digraph.mem_edge g ~src:1 ~dst:2);
  Alcotest.(check bool) "mem absent" false (Digraph.mem_edge g ~src:2 ~dst:1);
  Alcotest.check_raises "label absent" Not_found (fun () ->
      ignore (Digraph.label g ~src:0 ~dst:1))

let test_transpose () =
  let g = Digraph.create ~n:3 in
  Digraph.add_edge g ~src:0 ~dst:1 ~label:5;
  Digraph.add_edge g ~src:1 ~dst:2 ~label:6;
  let t = Digraph.transpose g in
  Alcotest.(check bool) "reversed edge" true (Digraph.mem_edge t ~src:1 ~dst:0);
  Alcotest.(check bool) "original direction gone" false (Digraph.mem_edge t ~src:0 ~dst:1);
  Alcotest.(check int) "labels preserved" 5 (Digraph.label t ~src:1 ~dst:0)

let test_map_labels () =
  let g = Digraph.create ~n:2 in
  Digraph.add_edge g ~src:0 ~dst:1 ~label:3;
  let doubled = Digraph.map_labels g ~f:(fun ~src:_ ~dst:_ ~label -> 2 * label) in
  Alcotest.(check int) "doubled" 6 (Digraph.label doubled ~src:0 ~dst:1)

let test_fold_edges () =
  let g = Digraph.create ~n:3 in
  Digraph.add_edge g ~src:0 ~dst:1 ~label:1;
  Digraph.add_edge g ~src:1 ~dst:2 ~label:2;
  let sum = Digraph.fold_edges g ~init:0 ~f:(fun acc ~src:_ ~dst:_ ~label -> acc + label) in
  Alcotest.(check int) "label sum" 3 sum

let suite =
  ( "digraph",
    [
      Alcotest.test_case "create" `Quick test_create;
      Alcotest.test_case "create negative" `Quick test_create_negative;
      Alcotest.test_case "adjacency" `Quick test_add_edge_and_adjacency;
      Alcotest.test_case "out of range" `Quick test_out_of_range;
      Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
      Alcotest.test_case "mem/label" `Quick test_mem_and_label;
      Alcotest.test_case "transpose" `Quick test_transpose;
      Alcotest.test_case "map labels" `Quick test_map_labels;
      Alcotest.test_case "fold edges" `Quick test_fold_edges;
    ] )
