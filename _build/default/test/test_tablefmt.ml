module Tablefmt = Nocmap_util.Tablefmt

let test_render_basic () =
  let t =
    Tablefmt.create ~title:"demo"
      ~columns:[ ("name", Tablefmt.Left); ("value", Tablefmt.Right) ]
      ()
  in
  Tablefmt.add_row t [ "alpha"; "1" ];
  Tablefmt.add_row t [ "b"; "22" ];
  let out = Tablefmt.render t in
  Alcotest.(check bool) "has title" true (String.length out > 4 && String.sub out 0 4 = "demo");
  Test_util.check_contains ~msg:"has alpha row" ~needle:"| alpha |" out;
  Test_util.check_contains ~msg:"right-aligns value" ~needle:"|     1 |" out

let test_summary_separator () =
  let t = Tablefmt.create ~columns:[ ("c", Tablefmt.Left) ] () in
  Tablefmt.add_row t [ "x" ];
  Tablefmt.add_summary_row t [ "avg" ];
  let out = Tablefmt.render t in
  let lines = String.split_on_char '\n' out in
  let separators = List.filter (fun l -> String.length l > 0 && l.[0] = '+') lines in
  Alcotest.(check int) "header, body and summary separators" 4 (List.length separators)

let test_wrong_arity () =
  let t = Tablefmt.create ~columns:[ ("a", Tablefmt.Left); ("b", Tablefmt.Left) ] () in
  Alcotest.check_raises "too few cells"
    (Invalid_argument "Tablefmt.add_row: wrong number of cells") (fun () ->
      Tablefmt.add_row t [ "only-one" ])

let test_center_alignment () =
  let t = Tablefmt.create ~columns:[ ("wide-header", Tablefmt.Center) ] () in
  Tablefmt.add_row t [ "x" ];
  let out = Tablefmt.render t in
  Test_util.check_contains ~msg:"centered" ~needle:"|      x      |" out

let test_no_rows () =
  let t = Tablefmt.create ~columns:[ ("only", Tablefmt.Left) ] () in
  let out = Tablefmt.render t in
  Test_util.check_contains ~msg:"header still rendered" ~needle:"| only |" out

let suite =
  ( "tablefmt",
    [
      Alcotest.test_case "render basics" `Quick test_render_basic;
      Alcotest.test_case "summary separator" `Quick test_summary_separator;
      Alcotest.test_case "wrong arity" `Quick test_wrong_arity;
      Alcotest.test_case "center alignment" `Quick test_center_alignment;
      Alcotest.test_case "no rows" `Quick test_no_rows;
    ] )
