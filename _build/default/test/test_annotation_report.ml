module Mesh = Nocmap_noc.Mesh
module Crg = Nocmap_noc.Crg
module Noc_params = Nocmap_energy.Noc_params
module Wormhole = Nocmap_sim.Wormhole
module Annotation_report = Nocmap_sim.Annotation_report
module Features = Nocmap_model.Features
module Fig1 = Nocmap_apps.Fig1

let crg = Crg.create (Mesh.create ~cols:2 ~rows:2)

let trace placement =
  Wormhole.run ~params:Noc_params.paper_example ~crg ~placement Fig1.cdcg

let test_router_bits () =
  (* Figure 2(a) router annotations: 85, 65, 70, 35 pico-bits... bits. *)
  let bits = Annotation_report.router_bits (trace Fig1.mapping_c) in
  Alcotest.(check (array int)) "per-router bit totals" [| 85; 65; 70; 35 |] bits

let test_link_bits_sum () =
  (* Total link bits = sum over communications of w * (K - 1):
     A->B 15*1, A->F 15*2, B->F 40*1, E->A 35*1, F->B 15*1 = 135. *)
  let bits = Annotation_report.link_bits ~crg (trace Fig1.mapping_c) in
  Alcotest.(check int) "total link bits" 135 (Array.fold_left ( + ) 0 bits)

let test_render_structure () =
  let out = Annotation_report.render ~cdcg:Fig1.cdcg ~crg (trace Fig1.mapping_c) in
  Test_util.check_contains ~msg:"router line" ~needle:"router 0" out;
  Test_util.check_contains ~msg:"figure 3 entry" ~needle:"15(A->F):[46,69]" out;
  Test_util.check_contains ~msg:"link line" ~needle:"link L(0->2)" out

let test_features_on_fig1 () =
  let f = Features.of_cdcg Fig1.cdcg in
  Alcotest.(check int) "cores" 4 f.Features.cores;
  Alcotest.(check int) "packets" 6 f.Features.packets;
  Alcotest.(check int) "bits" 120 f.Features.total_bits;
  Alcotest.(check int) "deps" 5 f.Features.dependences;
  Alcotest.(check int) "comms" 5 f.Features.communications;
  Alcotest.(check (float 1e-9)) "ndp/ncc" (11.0 /. 5.0) (Features.ndp_over_ncc f)

let suite =
  ( "annotation-report",
    [
      Alcotest.test_case "router bits (fig 2)" `Quick test_router_bits;
      Alcotest.test_case "link bits" `Quick test_link_bits_sum;
      Alcotest.test_case "render structure" `Quick test_render_structure;
      Alcotest.test_case "features on fig1" `Quick test_features_on_fig1;
    ] )
