module Transform = Nocmap_model.Transform
module Cdcg = Nocmap_model.Cdcg
module Mesh = Nocmap_noc.Mesh
module Crg = Nocmap_noc.Crg
module Noc_params = Nocmap_energy.Noc_params
module Wormhole = Nocmap_sim.Wormhole
module Trace = Nocmap_sim.Trace
module Rng = Nocmap_util.Rng
module Generator = Nocmap_tgff.Generator
module Fig1 = Nocmap_apps.Fig1

let test_no_split_below_threshold () =
  let split = Transform.split_packets ~max_bits:1_000 Fig1.cdcg in
  Alcotest.(check int) "unchanged packet count" 6 (Cdcg.packet_count split);
  Alcotest.(check int) "unchanged volume" 120 (Cdcg.total_bits split)

let test_split_structure () =
  (* Fig1's 40-bit B->F packet splits into 3 pieces of <= 15 bits and
     the 20-bit E->A packet into 2. *)
  let split = Transform.split_packets ~max_bits:15 Fig1.cdcg in
  Alcotest.(check int) "three extra packets" 9 (Cdcg.packet_count split);
  Alcotest.(check int) "volume preserved" 120 (Cdcg.total_bits split);
  let sub = Cdcg.packets_from split ~src:Fig1.core_b ~dst:Fig1.core_f in
  Alcotest.(check int) "three sub-packets" 3 (List.length sub);
  (match sub with
  | a :: b :: c :: _ ->
    let bits i = split.Cdcg.packets.(i).Cdcg.bits in
    Alcotest.(check int) "split volume" 40 (bits a + bits b + bits c);
    Alcotest.(check bool) "bounded" true (bits a <= 15 && bits b <= 15 && bits c <= 15);
    (* chained *)
    Alcotest.(check (list int)) "b waits for a" [ a ] (Cdcg.predecessors split b);
    Alcotest.(check (list int)) "c waits for b" [ b ] (Cdcg.predecessors split c);
    (* only the first piece pays the computation time *)
    Alcotest.(check int) "compute on first" 10 split.Cdcg.packets.(a).Cdcg.compute;
    Alcotest.(check int) "no compute on rest" 0 split.Cdcg.packets.(b).Cdcg.compute
  | _ -> Alcotest.fail "expected three sub-packets")

let test_downstream_deps_follow_last_piece () =
  let split = Transform.split_packets ~max_bits:15 Fig1.cdcg in
  (* pFB1 depended on pBF1; after splitting it must wait for the LAST
     B->F piece. *)
  let fb = List.hd (Cdcg.packets_from split ~src:Fig1.core_f ~dst:Fig1.core_b) in
  let bf = Cdcg.packets_from split ~src:Fig1.core_b ~dst:Fig1.core_f in
  let last_bf = List.nth bf (List.length bf - 1) in
  Alcotest.(check bool) "depends on the tail piece" true
    (List.mem last_bf (Cdcg.predecessors split fb))

let test_invalid_max_bits () =
  Alcotest.(check bool) "rejected" true
    (match Transform.split_packets ~max_bits:0 Fig1.cdcg with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_volume_and_validity_preserved =
  QCheck2.Test.make ~name:"splitting preserves volume and validity" ~count:60
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 1 500))
    (fun (seed, max_bits) ->
      let rng = Rng.create ~seed in
      let spec = Generator.default_spec ~name:"s" ~cores:5 ~packets:15 ~total_bits:6_000 in
      let cdcg = Generator.generate rng spec in
      let split = Transform.split_packets ~max_bits cdcg in
      Cdcg.total_bits split = Cdcg.total_bits cdcg
      && Array.for_all
           (fun (p : Cdcg.packet) -> p.Cdcg.bits <= max_bits)
           split.Cdcg.packets
      && Nocmap_graph.Topo.is_dag (Cdcg.to_digraph split))

let test_pipelining_effect () =
  (* One long message over several hops: splitting lets segments
     pipeline, but each segment pays the routing overhead again.  Both
     directions are legitimate; we only check the simulation runs and
     the latency changes. *)
  let cdcg =
    Cdcg.create_exn ~name:"long" ~core_names:[| "a"; "b" |]
      ~packets:[| { Cdcg.src = 0; dst = 1; compute = 0; bits = 120; label = "m" } |]
      ~deps:[]
  in
  let crg = Crg.create (Mesh.create ~cols:4 ~rows:1) in
  let params = Noc_params.paper_example in
  let texec c =
    (Wormhole.run ~trace:false ~params ~crg ~placement:[| 0; 3 |] c).Trace.texec_cycles
  in
  let whole = texec cdcg in
  let split = texec (Transform.split_packets ~max_bits:30 cdcg) in
  (* eq (8): K = 4 routers, n = 120 flits, sent at 0. *)
  Alcotest.(check int) "whole message" ((4 * 3) + 120) whole;
  (* Four delivery-chained pieces each pay the routing latency. *)
  Alcotest.(check int) "split pays per-piece routing" (4 * ((4 * 3) + 30)) split

let test_merge_statistics () =
  let split = Transform.split_packets ~max_bits:15 Fig1.cdcg in
  let line = Transform.merge_statistics Fig1.cdcg split in
  Test_util.check_contains ~msg:"before" ~needle:"6 packets" line;
  Test_util.check_contains ~msg:"after" ~needle:"9 packets" line

let suite =
  ( "transform",
    [
      Alcotest.test_case "no split below threshold" `Quick test_no_split_below_threshold;
      Alcotest.test_case "split structure" `Quick test_split_structure;
      Alcotest.test_case "downstream deps" `Quick test_downstream_deps_follow_last_piece;
      Alcotest.test_case "invalid max bits" `Quick test_invalid_max_bits;
      QCheck_alcotest.to_alcotest prop_volume_and_validity_preserved;
      Alcotest.test_case "pipelining effect" `Quick test_pipelining_effect;
      Alcotest.test_case "merge statistics" `Quick test_merge_statistics;
    ] )
