module Mesh = Nocmap_noc.Mesh
module Link = Nocmap_noc.Link

let test_id_endpoint_roundtrip () =
  let mesh = Mesh.create ~cols:4 ~rows:3 in
  let all = Link.all mesh in
  List.iter
    (fun lid ->
      let src, dst = Link.endpoints mesh lid in
      Alcotest.(check int) "id roundtrip" lid (Link.id mesh ~src ~dst);
      Alcotest.(check int) "adjacent" 1 (Mesh.manhattan mesh src dst))
    all

let test_link_count_formula () =
  (* Directed links in a cols x rows mesh: 2*((cols-1)*rows + cols*(rows-1)). *)
  List.iter
    (fun (cols, rows) ->
      let mesh = Mesh.create ~cols ~rows in
      let expected = 2 * (((cols - 1) * rows) + (cols * (rows - 1))) in
      Alcotest.(check int)
        (Printf.sprintf "%dx%d" cols rows)
        expected
        (List.length (Link.all mesh)))
    [ (1, 1); (2, 2); (3, 2); (8, 8); (12, 10) ]

let test_not_adjacent () =
  let mesh = Mesh.create ~cols:3 ~rows:3 in
  Alcotest.check_raises "diagonal" (Invalid_argument "Link.id: tiles are not adjacent")
    (fun () -> ignore (Link.id mesh ~src:0 ~dst:4));
  Alcotest.check_raises "distant" (Invalid_argument "Link.id: tiles are not adjacent")
    (fun () -> ignore (Link.id mesh ~src:0 ~dst:2))

let test_exists () =
  let mesh = Mesh.create ~cols:2 ~rows:2 in
  (* Tile 0 (top-left) has east (dir 1) and south (dir 2), not north/west. *)
  Alcotest.(check bool) "north of corner" false (Link.exists mesh 0);
  Alcotest.(check bool) "east of corner" true (Link.exists mesh 1);
  Alcotest.(check bool) "south of corner" true (Link.exists mesh 2);
  Alcotest.(check bool) "west of corner" false (Link.exists mesh 3);
  Alcotest.(check bool) "beyond range" false (Link.exists mesh 16)

let test_directions_distinct () =
  let mesh = Mesh.create ~cols:3 ~rows:3 in
  (* The two directions of a physical channel are distinct resources. *)
  let forward = Link.id mesh ~src:0 ~dst:1 in
  let backward = Link.id mesh ~src:1 ~dst:0 in
  Alcotest.(check bool) "distinct ids" true (forward <> backward)

let test_to_string () =
  let mesh = Mesh.create ~cols:2 ~rows:2 in
  let lid = Link.id mesh ~src:0 ~dst:2 in
  Alcotest.(check string) "rendering" "L(0->2)" (Link.to_string mesh lid)

let suite =
  ( "link",
    [
      Alcotest.test_case "id/endpoints roundtrip" `Quick test_id_endpoint_roundtrip;
      Alcotest.test_case "link count formula" `Quick test_link_count_formula;
      Alcotest.test_case "not adjacent" `Quick test_not_adjacent;
      Alcotest.test_case "exists" `Quick test_exists;
      Alcotest.test_case "directions distinct" `Quick test_directions_distinct;
      Alcotest.test_case "to_string" `Quick test_to_string;
    ] )
